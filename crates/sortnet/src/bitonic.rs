//! Batcher's bitonic networks (paper §V-B, Fig. 2).
//!
//! `Θ(log² n)` depth, `Θ(n log² n)` comparators. The merge network compares
//! wire `i` with wire `i + n/2` and recurses on both halves — exactly the
//! recursion illustrated in Fig. 2, which in a 2D row-major mapping first
//! shrinks the number of rows, then the number of columns.

use crate::network::{Comparator, Network};

/// The bitonic merge network over `n` wires (`n` a power of two): sorts any
/// *bitonic* input ascending; in particular `[ascending A, descending B]`.
///
/// Stage `j ∈ {n/2, n/4, …, 1}` compares each wire `i` with `i ^ j`
/// (ascending), matching the recursive "compare `i` with `i + n/2`, then
/// merge the halves" definition.
pub fn bitonic_merge(n: usize) -> Network {
    assert!(n.is_power_of_two(), "bitonic networks need a power-of-two width");
    let mut net = Network::new(n);
    let mut j = n / 2;
    while j >= 1 {
        let mut stage = Vec::with_capacity(n / 2);
        for i in 0..n {
            let l = i ^ j;
            if l > i {
                stage.push(Comparator::new(i, l));
            }
        }
        net.push_stage(stage);
        j /= 2;
    }
    net
}

/// The full bitonic sorting network over `n` wires (`n` a power of two).
///
/// ```
/// use sortnet::bitonic_sort;
/// let net = bitonic_sort(8);
/// assert_eq!(net.apply(&[5, 3, 8, 1, 9, 2, 7, 4]), vec![1, 2, 3, 4, 5, 7, 8, 9]);
/// assert_eq!(net.depth(), 6); // log²-ish
/// ```
///
/// Phase `k ∈ {2, 4, …, n}` merges bitonic runs of length `k`; direction of
/// each comparator follows the `i & k` bit so that adjacent runs alternate
/// and form bitonic sequences for the next phase.
pub fn bitonic_sort(n: usize) -> Network {
    assert!(n.is_power_of_two(), "bitonic networks need a power-of-two width");
    let mut net = Network::new(n);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut stage = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    if i & k == 0 {
                        stage.push(Comparator::new(i, l));
                    } else {
                        stage.push(Comparator::new(l, i));
                    }
                }
            }
            net.push_stage(stage);
            j /= 2;
        }
        k *= 2;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitonic_sort_passes_01_principle_small_widths() {
        for n in [2usize, 4, 8, 16] {
            assert!(bitonic_sort(n).sorts_all_01(), "width {n}");
        }
    }

    #[test]
    fn bitonic_sort_depth_is_log_squared() {
        for logn in 1..=6u32 {
            let n = 1usize << logn;
            let net = bitonic_sort(n);
            assert_eq!(net.depth() as u32, logn * (logn + 1) / 2);
        }
    }

    #[test]
    fn bitonic_merge_depth_is_log() {
        assert_eq!(bitonic_merge(16).depth(), 4);
        assert_eq!(bitonic_merge(64).depth(), 6);
    }

    #[test]
    fn bitonic_merge_merges_reversed_halves() {
        // Merge [ascending | descending]: a bitonic sequence.
        let a = [1i64, 4, 7, 9];
        let b = [8i64, 6, 3, 0];
        let input: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        let out = bitonic_merge(8).apply(&input);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn bitonic_sort_sorts_random_inputs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [32usize, 128, 256] {
            let net = bitonic_sort(n);
            let input: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            let out = net.apply(&input);
            let mut expect = input.clone();
            expect.sort_unstable();
            assert_eq!(out, expect, "width {n}");
        }
    }

    #[test]
    fn comparator_count_matches_formula() {
        // n/2 comparators per stage.
        let n = 64;
        let net = bitonic_sort(n);
        assert_eq!(net.size(), net.depth() * n / 2);
    }
}
