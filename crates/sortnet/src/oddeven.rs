//! Odd-even transposition sort — the classic mesh-style baseline.
//!
//! `n` stages of neighbour exchanges. On a row-major grid mapping this is
//! the prototypical "`K` rounds on a mesh" algorithm the related-work section
//! discusses: `Θ(n)` depth but only unit-distance messages.

use crate::network::{Comparator, Network};

/// The odd-even transposition network over `n` wires: `n` alternating stages
/// of `(2i, 2i+1)` and `(2i+1, 2i+2)` comparators.
pub fn odd_even_transposition(n: usize) -> Network {
    let mut net = Network::new(n);
    for round in 0..n {
        let first = round % 2;
        let mut stage = Vec::with_capacity(n / 2);
        let mut i = first;
        while i + 1 < n {
            stage.push(Comparator::new(i, i + 1));
            i += 2;
        }
        net.push_stage(stage);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_all_01_small() {
        for n in [1usize, 2, 3, 5, 8, 12, 16] {
            assert!(odd_even_transposition(n).sorts_all_01(), "width {n}");
        }
    }

    #[test]
    fn depth_equals_width() {
        assert_eq!(odd_even_transposition(10).depth(), 10);
    }

    #[test]
    fn sorts_reverse_input() {
        let n = 17;
        let input: Vec<i64> = (0..n as i64).rev().collect();
        let out = odd_even_transposition(n).apply(&input);
        let expect: Vec<i64> = (0..n as i64).collect();
        assert_eq!(out, expect);
    }
}
