//! Batcher's odd-even mergesort network.
//!
//! Same `Θ(log² n)` depth class as the bitonic network but with roughly half
//! the comparators — the second classic data-oblivious sorter the paper's
//! related work surveys (\[30\]). Included for the sorting-network ablation
//! benchmark: on the spatial grid its energy has the same `Θ(n^{3/2} log n)`
//! shape as bitonic sort (its recursion is equally one-dimensional), so it
//! demonstrates that the log-factor loss is a property of 1D networks, not
//! of Batcher's particular construction.

use crate::network::{Comparator, Network};

/// The odd-even merge network over `2^p` wires, comparing across a span of
/// `2^q ≤ 2^p` (classic Batcher recursion, iterative form).
fn merge_stages(net: &mut Network, lo: usize, n: usize, r: usize) {
    let step = r * 2;
    if step < n {
        merge_stages(net, lo, n, step);
        merge_stages(net, lo + r, n, step);
        let mut stage = Vec::new();
        let mut i = lo + r;
        while i + r < lo + n {
            stage.push(Comparator::new(i, i + r));
            i += step;
        }
        if !stage.is_empty() {
            net.push_stage(stage);
        }
    } else {
        net.push_stage(vec![Comparator::new(lo, lo + r)]);
    }
}

fn sort_stages(net: &mut Network, lo: usize, n: usize) {
    if n > 1 {
        let m = n / 2;
        sort_stages(net, lo, m);
        sort_stages(net, lo + m, m);
        merge_stages(net, lo, n, 1);
    }
}

/// Batcher's odd-even mergesort network over `n` wires (`n` a power of two).
///
/// Note: the recursive construction emits one stage per comparator group of
/// a sub-merge; stages of independent sub-problems are *not* fused, so
/// [`Network::depth`] over-counts parallel depth. The spatial execution cost
/// model is unaffected (energy is per comparator; chain depth is tracked per
/// value), which is what the ablation measures.
pub fn odd_even_mergesort(n: usize) -> Network {
    assert!(n.is_power_of_two(), "odd-even mergesort needs a power-of-two width");
    let mut net = Network::new(n);
    if n > 1 {
        sort_stages(&mut net, 0, n);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_01_principle_small_widths() {
        for n in [2usize, 4, 8, 16] {
            assert!(odd_even_mergesort(n).sorts_all_01(), "width {n}");
        }
    }

    #[test]
    fn sorts_random_inputs() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [32usize, 128] {
            let net = odd_even_mergesort(n);
            let input: Vec<u64> = (0..n).map(|_| next() % 997).collect();
            let out = net.apply(&input);
            let mut expect = input.clone();
            expect.sort_unstable();
            assert_eq!(out, expect, "width {n}");
        }
    }

    #[test]
    fn uses_fewer_comparators_than_bitonic() {
        for n in [16usize, 64, 256] {
            let oe = odd_even_mergesort(n).size();
            let bit = crate::bitonic::bitonic_sort(n).size();
            assert!(oe < bit, "n={n}: odd-even {oe} vs bitonic {bit}");
        }
    }

    #[test]
    fn comparator_count_matches_batcher_formula() {
        // Batcher: (p² - p + 4)·2^{p-2} - 1 comparators for n = 2^p.
        for p in 1..=8u32 {
            let n = 1usize << p;
            let expect = (p * p - p + 4) as usize * (1 << (p.saturating_sub(2))) - 1;
            let got = odd_even_mergesort(n).size();
            // The closed form holds for p >= 2; check p >= 2 exactly.
            if p >= 2 {
                assert_eq!(got, expect, "p={p}");
            }
        }
    }

    #[test]
    fn grid_execution_sorts() {
        use spatial_model::{Coord, Machine, SubGrid};
        let n = 64usize;
        let grid = SubGrid::square(Coord::ORIGIN, 8);
        let net = odd_even_mergesort(n);
        let mut m = Machine::new();
        let items: Vec<_> =
            (0..n).map(|i| m.place(grid.rm_coord(i as u64), (n - i) as i64)).collect();
        let out = crate::exec::run_row_major(&mut m, &net, grid, items);
        let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        let mut expect = got.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
