//! Spatial execution of comparator networks.
//!
//! Each wire is pinned to one PE; a comparator exchanges the two wire values
//! (two messages, each paying the Manhattan distance between the PEs) and
//! keeps the minimum on the `low` wire. This is the execution model behind
//! Lemma V.3/V.4: the network's geometry — not its comparator count — sets
//! the energy.

use spatial_model::{Coord, Machine, SubGrid, Tracked};

use crate::network::Network;

/// Runs `net` with wire `i` pinned at `items[i].loc()`.
///
/// Returns the wire values after the last stage, in wire order (each value
/// still resident on its wire's PE).
pub fn run_on_coords<T: Clone + Ord + Send + Sync>(
    machine: &mut Machine,
    net: &Network,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    assert_eq!(items.len(), net.width(), "one input per wire");
    let locs: Vec<Coord> = items.iter().map(|t| t.loc()).collect();
    let mut wires: Vec<Tracked<T>> = items;
    for stage in net.stages() {
        // Exchange: each endpoint sends its value to the other; both then
        // locally keep min/max, so the chain through a comparator is one
        // message long. A stage's comparators touch disjoint wires, so the
        // whole stage's exchanges charge as one batch.
        let sends: Vec<(&Tracked<T>, Coord)> = stage
            .iter()
            .flat_map(|c| [(&wires[c.low], locs[c.high]), (&wires[c.high], locs[c.low])])
            .collect();
        let arrived = machine.send_batch_copy(&sends);
        drop(sends);
        for (c, pair) in stage.iter().zip(arrived.chunks_exact(2)) {
            let (to_high, to_low) = (&pair[0], &pair[1]);
            let new_low =
                wires[c.low].zip_with(to_low, |a, b| if a <= b { a.clone() } else { b.clone() });
            let new_high =
                wires[c.high].zip_with(to_high, |a, b| if a >= b { a.clone() } else { b.clone() });
            machine.discard(std::mem::replace(&mut wires[c.low], new_low));
            machine.discard(std::mem::replace(&mut wires[c.high], new_high));
        }
        for t in arrived {
            machine.discard(t);
        }
    }
    wires
}

/// Runs `net` with wires mapped row-major onto `grid` (the Fig. 2 layout).
/// `items[i]` must already reside at row-major position `i`.
pub fn run_row_major<T: Clone + Ord + Send + Sync>(
    machine: &mut Machine,
    net: &Network,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    assert_eq!(items.len() as u64, grid.len());
    for (i, it) in items.iter().enumerate() {
        assert_eq!(it.loc(), grid.rm_coord(i as u64), "wire {i} must sit at its row-major cell");
    }
    run_on_coords(machine, net, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitonic::{bitonic_merge, bitonic_sort};
    use crate::oddeven::odd_even_transposition;

    fn place_rm(m: &mut Machine, grid: SubGrid, vals: Vec<i64>) -> Vec<Tracked<i64>> {
        vals.into_iter().enumerate().map(|(i, v)| m.place(grid.rm_coord(i as u64), v)).collect()
    }

    fn pseudo(n: usize) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 2654435761) % 1009) - 500).collect()
    }

    #[test]
    fn grid_execution_matches_host_semantics() {
        let n = 64usize;
        let grid = SubGrid::square(Coord::ORIGIN, 8);
        let net = bitonic_sort(n);
        let vals = pseudo(n);
        let mut m = Machine::new();
        let items = place_rm(&mut m, grid, vals.clone());
        let out = run_row_major(&mut m, &net, grid, items);
        let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        assert_eq!(got, net.apply(&vals));
        let mut sorted = vals;
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn values_stay_on_their_wires() {
        let n = 16usize;
        let grid = SubGrid::square(Coord::ORIGIN, 4);
        let net = odd_even_transposition(n);
        let mut m = Machine::new();
        let items = place_rm(&mut m, grid, pseudo(n));
        let out = run_row_major(&mut m, &net, grid, items);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), grid.rm_coord(i as u64));
        }
    }

    #[test]
    fn energy_counts_two_messages_per_comparator() {
        // One comparator between adjacent cells: 2 messages of distance 1.
        let grid = SubGrid::new(Coord::ORIGIN, 1, 2);
        let mut net = Network::new(2);
        net.push_stage(vec![crate::network::Comparator::new(0, 1)]);
        let mut m = Machine::new();
        let items = place_rm(&mut m, grid, vec![9, 1]);
        let out = run_row_major(&mut m, &net, grid, items);
        assert_eq!(m.energy(), 2);
        assert_eq!(m.messages(), 2);
        assert_eq!(*out[0].value(), 1);
        assert_eq!(*out[1].value(), 9);
    }

    #[test]
    fn bitonic_sort_energy_scales_as_n_sqrt_n_log_n() {
        // Lemma V.4 with h = w = √n: energy Θ(n^{3/2} log n). Check the
        // growth rate between two sizes: n 16× larger → energy ≈ 64·(log
        // ratio) ≈ 85× larger. Accept a broad band around that.
        let energy = |side: u64| {
            let n = (side * side) as usize;
            let grid = SubGrid::square(Coord::ORIGIN, side);
            let net = bitonic_sort(n);
            let mut m = Machine::new();
            let items = place_rm(&mut m, grid, pseudo(n));
            let _ = run_row_major(&mut m, &net, grid, items);
            m.energy() as f64
        };
        let growth = energy(32) / energy(8);
        assert!(
            growth > 48.0 && growth < 140.0,
            "expected ≈64–90x energy growth for 16x n, got {growth:.1}x"
        );
    }

    #[test]
    fn bitonic_merge_on_grid_sorts_two_sorted_halves() {
        let n = 64usize;
        let grid = SubGrid::square(Coord::ORIGIN, 8);
        let mut a: Vec<i64> = pseudo(n / 2);
        let mut b: Vec<i64> = pseudo(n / 2).iter().map(|x| x + 13).collect();
        a.sort_unstable();
        b.sort_unstable();
        b.reverse(); // make [A asc, B desc] bitonic
        let input: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        let mut m = Machine::new();
        let items = place_rm(&mut m, grid, input.clone());
        let out = run_row_major(&mut m, &bitonic_merge(n), grid, items);
        let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn depth_watermark_tracks_network_depth() {
        let n = 256usize;
        let grid = SubGrid::square(Coord::ORIGIN, 16);
        let net = bitonic_sort(n);
        let mut m = Machine::new();
        let items = place_rm(&mut m, grid, pseudo(n));
        let _ = run_row_major(&mut m, &net, grid, items);
        // Each stage adds at most 1 to any chain; values passing through a
        // comparator gain exactly one message.
        assert!(m.report().depth as usize <= net.depth());
        assert!(m.report().depth as usize >= net.depth() / 2);
    }
}
