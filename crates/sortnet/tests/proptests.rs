//! Property-based tests for comparator networks, on the in-tree harness
//! (`spatial_core::check`).
//!
//! Widths ≤ 20 get exhaustive 0-1 verification (`sorts_all_01`); beyond
//! that the randomized `sorts_random_01` check takes over, which is the
//! regime the old width assert used to punt on.

use spatial_core::check::{check, Config, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use sortnet::{bitonic_sort, odd_even_mergesort, odd_even_transposition, Comparator, Network};

#[test]
fn networks_sort_arbitrary_integers() {
    check("networks_sort_arbitrary_integers", |g: &mut Gen| {
        // Bitonic and odd-even mergesort need power-of-two widths; the
        // transposition network takes any width.
        let w = 1usize << g.size(0..7);
        let input = g.vec_i64(w..w + 1, -1000..=1000);
        let mut expect = input.clone();
        expect.sort_unstable();
        for (name, net) in [("bitonic", bitonic_sort(w)), ("odd-even-merge", odd_even_mergesort(w))]
        {
            let got = net.apply(&input);
            prop_assert_eq!(&got, &expect, "{name} width {w}");
        }
        let any_w = g.size(1..80);
        let input = g.vec_i64(any_w..any_w + 1, -1000..=1000);
        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(
            odd_even_transposition(any_w).apply(&input),
            expect,
            "odd-even-transposition width {any_w}"
        );
        Ok(())
    });
}

#[test]
fn random_01_check_passes_beyond_exhaustive_widths() {
    // The exhaustive 0-1 check refuses widths > 20; the randomized check is
    // the supported path there. Power-of-two widths 32..=128 plus arbitrary
    // transposition widths in 21..=96.
    let cfg = Config::scaled(1, 4);
    spatial_core::check::check_cfg(
        &cfg,
        "random_01_check_passes_beyond_exhaustive_widths",
        |g: &mut Gen| {
            let w = 1usize << g.int(5u32..8);
            let seed = g.case_seed();
            prop_assert!(bitonic_sort(w).sorts_random_01(64, seed), "bitonic width {w}");
            prop_assert!(odd_even_mergesort(w).sorts_random_01(64, seed), "oem width {w}");
            let any_w = g.size(21..97);
            prop_assert!(
                odd_even_transposition(any_w).sorts_random_01(32, seed),
                "transposition width {any_w}"
            );
            Ok(())
        },
    );
}

#[test]
fn random_01_check_rejects_damaged_networks() {
    // Append one descending comparator after a correct wide network. That
    // provably breaks sorting: for wires i < j some step input `0^k 1^{w-k}`
    // leaves 0 on i and 1 on j after the sort, and the reversed comparator
    // swaps them — so the structured step family in `sorts_random_01` must
    // always catch it. (Merely *dropping* a comparator is not a valid
    // mutation here: Batcher's network contains redundant comparators.)
    check("random_01_check_rejects_damaged_networks", |g: &mut Gen| {
        let w = 1usize << g.int(5u32..7); // 32 or 64
        let i = g.size(0..w - 1);
        let j = g.size(i + 1..w);
        let mut broken = odd_even_mergesort(w);
        broken.push_stage(vec![Comparator::new(j, i)]); // max to the lower wire
        prop_assert!(
            !broken.sorts_random_01(64, g.case_seed()),
            "descending comparator ({j},{i}) went unnoticed at width {w}"
        );
        Ok(())
    });
}

#[test]
fn random_01_agrees_with_exhaustive_on_small_widths() {
    // Where both checks apply they must agree — on correct networks and on
    // truncated (possibly non-sorting) prefixes of them.
    check("random_01_agrees_with_exhaustive_on_small_widths", |g: &mut Gen| {
        let w = 1usize << g.int(1u32..5); // 2, 4, 8, 16
        let net = bitonic_sort(w);
        prop_assert!(net.sorts_all_01() && net.sorts_random_01(32, g.case_seed()));
        let mut partial = Network::new(w);
        let cut = g.size(0..net.depth());
        for stage in &net.stages()[..cut] {
            partial.push_stage(stage.clone());
        }
        prop_assert_eq!(
            partial.sorts_all_01(),
            partial.sorts_random_01(256, g.case_seed()),
            "width {w}, first {cut}/{} stages",
            net.depth()
        );
        Ok(())
    });
}

#[test]
fn fusion_preserves_function_on_random_inputs() {
    check("fusion_preserves_function_on_random_inputs", |g: &mut Gen| {
        let w = 1usize << g.size(1..7);
        let input = g.vec_i64(w..w + 1, -50..=50);
        let net = odd_even_mergesort(w);
        let fused = net.fused();
        prop_assert_eq!(fused.apply(&input), net.apply(&input));
        prop_assert!(fused.depth() <= net.depth());
        Ok(())
    });
}
