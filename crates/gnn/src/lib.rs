//! # Graph neural network layers on the Spatial Computer Model
//!
//! The paper's introduction motivates its primitives with graph neural
//! networks — in particular *sort pooling* layers \[16\], which "rely on
//! sorting as a critical operation for feature extraction". This crate
//! composes the reproduced primitives into the two layers such a network
//! needs, with every communication charged to the machine:
//!
//! * [`GraphConv`] — mean-style neighbourhood aggregation
//!   `H' = σ(Â·H·W + b)`: the sparse propagation `Â·H` runs one low-depth
//!   SpMV (Theorem VIII.2) per feature channel; the dense `·W` and the
//!   activation are PE-local (each node's feature vector lives on its PE).
//! * [`SortPooling`] — keep the `k` nodes with the largest readout channel,
//!   in sorted order: rank selection (§VI) + compaction + a small 2D
//!   mergesort, i.e. `O(n + k^{3/2})` energy instead of the `Θ(n^{3/2})` a
//!   full sort would cost.
//!
//! Feature vectors have a small constant width `d`, so a node's features
//! respect the model's O(1) words per PE.

use spatial_model::{zorder, Machine, Tracked};

use sorting::keyed::Keyed;
use spmv::{spmv_multi, Coo};

/// An `n × d` feature matrix: node `i`'s feature vector resides on the PE at
/// Z-index `lo + i`.
pub struct Features {
    lo: u64,
    d: usize,
    rows: Vec<Tracked<Vec<f64>>>,
}

impl Features {
    /// Places the rows (all of width `d`) on the Z-segment `[lo, lo + n)`.
    pub fn place(machine: &mut Machine, lo: u64, rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "empty feature matrix");
        let d = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == d), "ragged feature matrix");
        let rows = rows
            .into_iter()
            .enumerate()
            .map(|(i, r)| machine.place(zorder::coord_of(lo + i as u64), r))
            .collect();
        Features { lo, d, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.d
    }

    /// Host view of the matrix.
    pub fn values(&self) -> Vec<Vec<f64>> {
        self.rows.iter().map(|r| r.value().clone()).collect()
    }
}

/// A graph-convolution layer `H' = relu(Â·H·W + b)` (optionally linear).
pub struct GraphConv {
    /// `d_in × d_out` weights (column-major by output).
    pub weights: Vec<Vec<f64>>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
    /// Apply ReLU after the affine map.
    pub relu: bool,
}

impl GraphConv {
    /// Builds a layer; `weights[i][o]` maps input channel `i` to output `o`.
    pub fn new(weights: Vec<Vec<f64>>, bias: Vec<f64>, relu: bool) -> Self {
        assert!(!weights.is_empty());
        let d_out = bias.len();
        assert!(weights.iter().all(|r| r.len() == d_out), "weight shape mismatch");
        GraphConv { weights, bias, relu }
    }

    /// Applies the layer: one SpMV per input channel for `Â·H`, then the
    /// PE-local affine map and activation.
    ///
    /// `adj` is the (normalized) propagation matrix `Â` with
    /// `adj.n_rows == adj.n_cols == h.len()`.
    #[allow(clippy::needless_range_loop)] // channel indices address parallel arrays
    pub fn forward(&self, machine: &mut Machine, adj: &Coo<f64>, h: &Features) -> Features {
        let n = h.len();
        let d_in = h.width();
        let d_out = self.bias.len();
        assert_eq!(adj.n_rows, n);
        assert_eq!(adj.n_cols, n);
        assert_eq!(self.weights.len(), d_in, "weight shape mismatch");

        // Â·H in one multi-vector SpMV pass (citation [13]): the two sorts
        // and scans are shared across all d_in channels.
        let xs: Vec<Vec<f64>> =
            (0..d_in).map(|c| h.rows.iter().map(|r| r.value()[c]).collect()).collect();
        let (ys, _) = spmv_multi(machine, adj, &xs);
        let mut agg: Vec<Vec<f64>> = vec![vec![0.0; d_in]; n];
        for c in 0..d_in {
            for (i, &v) in ys[c].iter().enumerate() {
                agg[i][c] = v;
            }
        }
        // The aggregated channels are delivered back onto the node PEs by
        // the SpMV's gather step; combine them locally with the dense map.
        let rows: Vec<Tracked<Vec<f64>>> = h
            .rows
            .iter()
            .enumerate()
            .map(|(i, old)| {
                let mut out_row = self.bias.clone();
                for (ci, w_row) in self.weights.iter().enumerate() {
                    for (co, w) in w_row.iter().enumerate() {
                        out_row[co] += agg[i][ci] * w;
                    }
                }
                if self.relu {
                    for v in &mut out_row {
                        *v = v.max(0.0);
                    }
                }
                old.with_value(out_row)
            })
            .collect();
        Features { lo: h.lo, d: d_out, rows }
    }
}

/// Sort pooling: keep the `k` nodes with the largest *readout channel*
/// (the last feature), ordered ascending by that channel.
pub struct SortPooling {
    /// Number of nodes to keep.
    pub k: u64,
    /// RNG seed for the rank selection.
    pub seed: u64,
}

impl SortPooling {
    /// Applies the pooling; returns the `k` kept feature rows in readout
    /// order (resident on a compact segment).
    pub fn forward(&self, machine: &mut Machine, h: &Features) -> Vec<Vec<f64>> {
        let n = h.len() as u64;
        assert!(self.k >= 1 && self.k <= n, "k out of range");
        // Scored items: (readout, uid) keys with the full row riding along.
        let scored: Vec<Tracked<Keyed<ScoredRow>>> = h
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.duplicate().map(|row| {
                    let score = ordered::F64(*row.last().expect("non-empty row"));
                    Keyed::new(ScoredRow { score, row }, i as u64)
                })
            })
            .collect();
        // Select the k-th largest score, filter, compact, sort — via the
        // spatial-core top-k primitive.
        let kept = spatial_core::topk::top_k(machine, h.lo, scored, self.k, self.seed);
        kept.into_iter().map(|t| t.into_value().key.row).collect()
    }
}

/// A feature row ordered by its readout score (ties broken by the outer
/// [`Keyed`] uid, so the score-only equivalence is harmless).
#[derive(Clone, Debug)]
struct ScoredRow {
    score: ordered::F64,
    row: Vec<f64>,
}
impl PartialEq for ScoredRow {
    fn eq(&self, o: &Self) -> bool {
        self.score == o.score // consistent with the score-only Ord
    }
}
impl Eq for ScoredRow {}
impl Ord for ScoredRow {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.score.cmp(&o.score)
    }
}
impl PartialOrd for ScoredRow {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}

/// Total-ordered f64 wrapper (scores are finite by construction).
pub mod ordered {
    /// An `f64` with `Ord` via IEEE total ordering. Panics on NaN input at
    /// comparison time would be silent; construction is the caller's
    /// responsibility (GNN activations keep values finite).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    impl Ord for F64 {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0)
        }
    }
    impl PartialOrd for F64 {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
}

/// A whole sort-pooling network: conv layers followed by pooling.
pub struct SortPoolNet {
    /// The stacked convolution layers.
    pub layers: Vec<GraphConv>,
    /// The final pooling.
    pub pooling: SortPooling,
}

impl SortPoolNet {
    /// Runs the full forward pass; returns the pooled `k × d` block.
    pub fn forward(&self, machine: &mut Machine, adj: &Coo<f64>, input: Features) -> Vec<Vec<f64>> {
        let mut h = input;
        for layer in &self.layers {
            h = layer.forward(machine, adj, &h);
        }
        self.pooling.forward(machine, &h)
    }
}

/// Host reference of [`GraphConv::forward`] for testing.
#[allow(clippy::needless_range_loop)]
pub fn reference_conv(adj: &Coo<f64>, h: &[Vec<f64>], layer: &GraphConv) -> Vec<Vec<f64>> {
    let n = h.len();
    let d_in = h[0].len();
    let d_out = layer.bias.len();
    let mut agg = vec![vec![0.0; d_in]; n];
    for c in 0..d_in {
        let x: Vec<f64> = h.iter().map(|r| r[c]).collect();
        let y = adj.multiply_dense(&x);
        for i in 0..n {
            agg[i][c] = y[i];
        }
    }
    (0..n)
        .map(|i| {
            let mut row = layer.bias.clone();
            for ci in 0..d_in {
                for co in 0..d_out {
                    row[co] += agg[i][ci] * layer.weights[ci][co];
                }
            }
            if layer.relu {
                for v in &mut row {
                    *v = v.max(0.0);
                }
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorting::mergesort::sort_z;

    fn line_graph(n: usize) -> Coo<f64> {
        // Symmetric path graph with self-loops, row-normalized.
        let mut entries = Vec::new();
        for i in 0..n {
            let mut nbrs = vec![i];
            if i > 0 {
                nbrs.push(i - 1);
            }
            if i + 1 < n {
                nbrs.push(i + 1);
            }
            let w = 1.0 / nbrs.len() as f64;
            for j in nbrs {
                entries.push((i as u32, j as u32, w));
            }
        }
        Coo::new(n, n, entries)
    }

    fn input_features(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| (0..d).map(|c| ((i * 7 + c * 3) % 11) as f64 - 5.0).collect()).collect()
    }

    #[test]
    fn conv_matches_host_reference() {
        let n = 32;
        let adj = line_graph(n);
        let h = input_features(n, 3);
        let layer = GraphConv::new(
            vec![vec![0.5, -0.25], vec![1.0, 0.5], vec![-0.5, 1.0]],
            vec![0.1, -0.1],
            true,
        );
        let mut m = Machine::new();
        let feats = Features::place(&mut m, 0, h.clone());
        let out = layer.forward(&mut m, &adj, &feats);
        let expect = reference_conv(&adj, &h, &layer);
        for (a, b) in out.values().iter().zip(&expect) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        assert_eq!(out.width(), 2);
        assert!(m.energy() > 0);
    }

    #[test]
    fn relu_clamps_negative_channels() {
        let n = 8;
        let adj = line_graph(n);
        let h = input_features(n, 2);
        let layer = GraphConv::new(vec![vec![-10.0], vec![-10.0]], vec![0.0], true);
        let mut m = Machine::new();
        let feats = Features::place(&mut m, 0, h);
        let out = layer.forward(&mut m, &adj, &feats);
        assert!(out.values().iter().all(|r| r[0] >= 0.0));
    }

    #[test]
    fn sort_pooling_keeps_top_k_by_readout() {
        let n = 64usize;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, ((i * 13) % 64) as f64]).collect();
        let mut m = Machine::new();
        let feats = Features::place(&mut m, 0, rows.clone());
        let pooled = SortPooling { k: 8, seed: 3 }.forward(&mut m, &feats);
        // Expected: the 8 rows with the largest readout (second channel).
        let mut by_score = rows.clone();
        by_score.sort_by(|a, b| a[1].total_cmp(&b[1]));
        let expect: Vec<Vec<f64>> = by_score[n - 8..].to_vec();
        assert_eq!(pooled, expect);
    }

    #[test]
    fn full_network_runs_end_to_end() {
        let n = 64usize;
        let adj = line_graph(n);
        let h = input_features(n, 3);
        let net = SortPoolNet {
            layers: vec![
                GraphConv::new(
                    vec![vec![0.3, 0.7], vec![-0.2, 0.4], vec![0.5, -0.5]],
                    vec![0.0, 0.0],
                    true,
                ),
                GraphConv::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![0.0, 0.5], false),
            ],
            pooling: SortPooling { k: 16, seed: 1 },
        };
        let mut m = Machine::new();
        let feats = Features::place(&mut m, 0, h.clone());
        let pooled = net.forward(&mut m, &adj, feats);
        assert_eq!(pooled.len(), 16);
        // Host cross-check: replay both conv layers then pool.
        let h1 = reference_conv(&adj, &h, &net.layers[0]);
        let h2 = reference_conv(&adj, &h1, &net.layers[1]);
        let mut by_score = h2.clone();
        by_score.sort_by(|a, b| a.last().unwrap().total_cmp(b.last().unwrap()));
        let expect: Vec<Vec<f64>> = by_score[n - 16..].to_vec();
        assert_eq!(pooled, expect);
        // Pooled rows come out ordered by readout.
        assert!(pooled.windows(2).all(|w| w[0].last() <= w[1].last()));
    }

    #[test]
    fn pooling_is_cheaper_than_sorting_all_nodes() {
        let n = 4096usize;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![((i * 48271) % 65521) as f64]).collect();
        let mut m1 = Machine::new();
        let feats = Features::place(&mut m1, 0, rows.clone());
        let _ = SortPooling { k: 32, seed: 5 }.forward(&mut m1, &feats);

        let mut m2 = Machine::new();
        let items = collectives::zarray::place_z(
            &mut m2,
            0,
            rows.iter()
                .enumerate()
                .map(|(i, r)| Keyed::new(ordered::F64(r[0]), i as u64))
                .collect(),
        );
        let _ = sort_z(&mut m2, 0, items);
        assert!(m1.energy() * 3 < m2.energy(), "pooling {} vs sort {}", m1.energy(), m2.energy());
    }
}
