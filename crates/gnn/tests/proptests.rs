//! Property-based tests for the GNN layers.

use proptest::prelude::*;

use gnn::{reference_conv, Features, GraphConv, SortPooling};
use spatial_model::Machine;
use spmv::Coo;

/// Strategy: a small graph (adjacency with unit-ish weights) + features.
fn graph_and_features() -> impl Strategy<Value = (Coo<f64>, Vec<Vec<f64>>)> {
    (2usize..16, 1usize..4).prop_flat_map(|(n, d)| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
        let feats = prop::collection::vec(prop::collection::vec(-4.0f64..4.0, d), n);
        (edges, feats).prop_map(move |(e, f)| {
            let entries = e.into_iter().map(|(r, c)| (r, c, 0.5)).collect();
            (Coo::new(n, n, entries), f)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conv_matches_reference((adj, feats) in graph_and_features()) {
        let d = feats[0].len();
        let layer = GraphConv::new(
            (0..d).map(|i| (0..2).map(|o| 0.3 * (i as f64 + 1.0) - 0.2 * o as f64).collect()).collect(),
            vec![0.1, -0.1],
            true,
        );
        let mut m = Machine::new();
        let h = Features::place(&mut m, 0, feats.clone());
        let out = layer.forward(&mut m, &adj, &h);
        let expect = reference_conv(&adj, &feats, &layer);
        for (a, b) in out.values().iter().zip(&expect) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn pooling_keeps_exactly_k(
        scores in prop::collection::vec(-100i32..100, 4..64),
        k_frac in 0.1f64..1.0,
    ) {
        let n = scores.len();
        let k = ((n as f64 * k_frac) as u64).clamp(1, n as u64);
        let rows: Vec<Vec<f64>> = scores.iter().map(|&s| vec![f64::from(s)]).collect();
        let mut m = Machine::new();
        let h = Features::place(&mut m, 0, rows.clone());
        let pooled = SortPooling { k, seed: 1 }.forward(&mut m, &h);
        prop_assert_eq!(pooled.len() as u64, k);
        // Ordered ascending by readout and a subset of the input rows.
        prop_assert!(pooled.windows(2).all(|w| w[0][0] <= w[1][0]));
        for row in &pooled {
            prop_assert!(rows.contains(row));
        }
        // The smallest kept score must dominate every dropped score
        // (ties aside: count how many inputs strictly exceed the minimum).
        let min_kept = pooled[0][0];
        let strictly_above = rows.iter().filter(|r| r[0] > min_kept).count() as u64;
        prop_assert!(strictly_above < k);
    }
}
