//! Property-based tests for the GNN layers, on the in-tree harness
//! (`spatial_core::check`).

use spatial_core::check::{check, Config, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use gnn::{reference_conv, Features, GraphConv, SortPooling};
use spatial_model::Machine;
use spmv::Coo;

/// A small graph (adjacency with unit-ish weights) + features.
fn graph_and_features(g: &mut Gen) -> (Coo<f64>, Vec<Vec<f64>>) {
    let n = g.size(2..16);
    let d = g.size(1..4);
    let n_edges = g.size(0..3 * n);
    let entries: Vec<(u32, u32, f64)> =
        g.vec(n_edges, |g| (g.int(0u32..n as u32), g.int(0u32..n as u32), 0.5));
    let feats: Vec<Vec<f64>> = g.vec(n, |g| g.vec(d, |g| g.f64_unit() * 8.0 - 4.0));
    (Coo::new(n, n, entries), feats)
}

#[test]
fn conv_matches_reference() {
    let cfg = Config::scaled(1, 2);
    spatial_core::check::check_cfg(&cfg, "conv_matches_reference", |g: &mut Gen| {
        let (adj, feats) = graph_and_features(g);
        let d = feats[0].len();
        let layer = GraphConv::new(
            (0..d)
                .map(|i| (0..2).map(|o| 0.3 * (i as f64 + 1.0) - 0.2 * o as f64).collect())
                .collect(),
            vec![0.1, -0.1],
            true,
        );
        let mut m = Machine::new();
        let h = Features::place(&mut m, 0, feats.clone());
        let out = layer.forward(&mut m, &adj, &h);
        let expect = reference_conv(&adj, &feats, &layer);
        for (a, b) in out.values().iter().zip(&expect) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
        Ok(())
    });
}

#[test]
fn pooling_keeps_exactly_k() {
    check("pooling_keeps_exactly_k", |g: &mut Gen| {
        let n_scores = g.size(4..64);
        let scores: Vec<i32> = g.vec(n_scores, |g| g.int(-100i32..100));
        let n = scores.len();
        let k = ((n as f64 * (0.1 + 0.9 * g.f64_unit())) as u64).clamp(1, n as u64);
        let rows: Vec<Vec<f64>> = scores.iter().map(|&s| vec![f64::from(s)]).collect();
        let mut m = Machine::new();
        let h = Features::place(&mut m, 0, rows.clone());
        let pooled = SortPooling { k, seed: 1 }.forward(&mut m, &h);
        prop_assert_eq!(pooled.len() as u64, k);
        // Ordered ascending by readout and a subset of the input rows.
        prop_assert!(pooled.windows(2).all(|w| w[0][0] <= w[1][0]));
        for row in &pooled {
            prop_assert!(rows.contains(row));
        }
        // The smallest kept score must dominate every dropped score
        // (ties aside: count how many inputs strictly exceed the minimum).
        let min_kept = pooled[0][0];
        let strictly_above = rows.iter().filter(|r| r[0] > min_kept).count() as u64;
        prop_assert!(strictly_above < k);
        Ok(())
    });
}
