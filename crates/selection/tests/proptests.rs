//! Property-based tests for randomized rank selection.

use proptest::prelude::*;

use selection::select_rank_values;
use spatial_model::Machine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selection_equals_order_statistic(
        vals in prop::collection::vec(-10_000i64..10_000, 1..400),
        k_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let n = vals.len() as u64;
        let k = ((n as f64 * k_frac) as u64).clamp(1, n);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut m = Machine::new();
        let (got, _) = select_rank_values(&mut m, 0, vals, k, seed);
        prop_assert_eq!(got, sorted[(k - 1) as usize]);
    }

    #[test]
    fn selection_handles_constant_arrays(n in 1usize..300, k_frac in 0.0f64..1.0, seed in 0u64..100) {
        let vals = vec![42i64; n];
        let k = ((n as f64 * k_frac) as u64).clamp(1, n as u64);
        let mut m = Machine::new();
        let (got, _) = select_rank_values(&mut m, 0, vals, k, seed);
        prop_assert_eq!(got, 42);
    }

    #[test]
    fn selection_is_seed_deterministic(
        vals in prop::collection::vec(-100i64..100, 8..200),
        seed in 0u64..50,
    ) {
        let n = vals.len() as u64;
        let run = |vals: Vec<i64>| {
            let mut m = Machine::new();
            let (v, stats) = select_rank_values(&mut m, 0, vals, n / 2 + 1, seed);
            (v, m.report(), stats.iterations, stats.fallbacks)
        };
        prop_assert_eq!(run(vals.clone()), run(vals));
    }

    #[test]
    fn stats_trajectory_is_decreasing_after_first_step(
        seed in 0u64..200,
    ) {
        let n = 4096usize;
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % 65521).collect();
        let mut m = Machine::new();
        let (_, stats) = select_rank_values(&mut m, 0, vals, n as u64 / 2, seed);
        // Active counts never grow.
        for w in stats.active_trajectory.windows(2) {
            prop_assert!(w[1] <= w[0], "{:?}", stats.active_trajectory);
        }
        prop_assert!(stats.iterations as u64 <= 10);
    }
}
