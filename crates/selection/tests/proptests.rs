//! Property-based tests for randomized rank selection, on the in-tree
//! harness (`spatial_core::check`).

use spatial_core::check::{check, Config, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use selection::select_rank_values;
use spatial_model::Machine;

#[test]
fn selection_equals_order_statistic() {
    check("selection_equals_order_statistic", |g: &mut Gen| {
        let vals = g.vec_i64(1..400, -10_000..=10_000);
        let n = vals.len() as u64;
        let k = ((n as f64 * g.f64_unit()) as u64).clamp(1, n);
        let seed = g.int(0u64..1000);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut m = Machine::new();
        let (got, _) = select_rank_values(&mut m, 0, vals, k, seed);
        prop_assert_eq!(got, sorted[(k - 1) as usize]);
        Ok(())
    });
}

#[test]
fn selection_handles_constant_arrays() {
    check("selection_handles_constant_arrays", |g: &mut Gen| {
        let n = g.size(1..300);
        let k = ((n as f64 * g.f64_unit()) as u64).clamp(1, n as u64);
        let seed = g.int(0u64..100);
        let vals = vec![42i64; n];
        let mut m = Machine::new();
        let (got, _) = select_rank_values(&mut m, 0, vals, k, seed);
        prop_assert_eq!(got, 42);
        Ok(())
    });
}

#[test]
fn selection_is_seed_deterministic() {
    check("selection_is_seed_deterministic", |g: &mut Gen| {
        let vals = g.vec_i64(8..200, -100..=100);
        let seed = g.int(0u64..50);
        let n = vals.len() as u64;
        let run = |vals: Vec<i64>| {
            let mut m = Machine::new();
            let (v, stats) = select_rank_values(&mut m, 0, vals, n / 2 + 1, seed);
            (v, m.report(), stats.iterations, stats.fallbacks)
        };
        prop_assert_eq!(run(vals.clone()), run(vals));
        Ok(())
    });
}

#[test]
fn stats_trajectory_is_decreasing_after_first_step() {
    // Large fixed input, sweeping algorithm seeds: fewer cases suffice.
    let cfg = Config::scaled(1, 2);
    spatial_core::check::check_cfg(
        &cfg,
        "stats_trajectory_is_decreasing_after_first_step",
        |g: &mut Gen| {
            let seed = g.int(0u64..200);
            let n = 4096usize;
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % 65521).collect();
            let mut m = Machine::new();
            let (_, stats) = select_rank_values(&mut m, 0, vals, n as u64 / 2, seed);
            // Active counts never grow.
            for w in stats.active_trajectory.windows(2) {
                prop_assert!(w[1] <= w[0], "{:?}", stats.active_trajectory);
            }
            prop_assert!(stats.iterations as u64 <= 10);
            Ok(())
        },
    );
}
