//! # Randomized rank selection (paper §VI, Theorem VI.3)
//!
//! Selects the rank-`k` element of `n` inputs with **linear energy**,
//! `O(log² n)` depth and `O(√n)` distance, with high probability — a
//! polynomial energy separation from sorting (`Θ(n^{3/2})`).
//!
//! Each iteration samples every active element independently with probability
//! `c·N^{-1/2}`, compacts the sample into a small square (scan + route),
//! sorts it with a Bitonic network, picks two pivots whose sample ranks
//! bracket `k` with high probability (Lemma VI.1), broadcasts them, counts
//! and deactivates everything outside the pivot interval (Lemma VI.2 shows
//! `N_{t+1} ≲ N_t^{3/4}·√ln n`, so `O(1)` iterations suffice), and flips the
//! comparison order whenever `k` passes the midpoint. If a pivot check fails
//! — probability `O(n^{-c/6})` — the algorithm falls back to a full 2D
//! Mergesort, preserving correctness.
//!
//! All randomness comes from a caller-provided seed, so runs (and their
//! exact model costs) are reproducible. [`SelectionStats`] exposes the
//! active-count trajectory, sample sizes and fallback count for the
//! Lemma VI.2 experiments.

use spatial_rng::Rng;

use spatial_model::{zorder, Machine, SpatialError, Tracked};

use collectives::scan::scan_exclusive;
use collectives::zarray::place_z;
use collectives::zseg::{broadcast_z, reduce_z};
use sorting::keyed::Keyed;
use sorting::mergesort::sort_z;

/// Telemetry from one selection run.
#[derive(Clone, Debug, Default)]
pub struct SelectionStats {
    /// Active-element count before each iteration (starts at `n`).
    pub active_trajectory: Vec<u64>,
    /// Sample size drawn in each iteration.
    pub sample_sizes: Vec<u64>,
    /// Number of sampling iterations executed.
    pub iterations: usize,
    /// 1 if the algorithm resorted to the sort-everything fallback.
    pub fallbacks: u32,
    /// Number of comparator flips (`k` crossed the midpoint).
    pub flips: u32,
}

/// The default sampling constant `c ≥ 3` of §VI.
pub const C: f64 = 3.0;

/// Tuning knobs for [`select_rank_cfg`].
#[derive(Clone, Copy, Debug)]
pub struct SelectionConfig {
    /// The §VI sampling constant: larger `c` draws bigger samples, lowering
    /// the pivot-failure probability (`O(n^{-c/6})`, Lemma VI.1) at the cost
    /// of proportionally more sampling energy. The paper requires `c ≥ 3`.
    pub c: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig { c: C, seed: 0 }
    }
}

/// Selects the rank-`k` smallest element (`k` 1-based) of `items`, which
/// occupy the Z-segment `[lo, lo + n)` (`lo` aligned to the padded length).
///
/// Returns the selected element (resident wherever the final gather placed
/// it) together with run telemetry.
pub fn select_rank<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    k: u64,
    seed: u64,
) -> (Tracked<T>, SelectionStats) {
    select_rank_cfg(machine, lo, items, k, SelectionConfig { c: C, seed })
}

/// Fallible [`select_rank`]: runs under the machine's active guard/fault
/// layer and surfaces any violation as a typed [`SpatialError`].
pub fn try_select_rank<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    k: u64,
    seed: u64,
) -> Result<(Tracked<T>, SelectionStats), SpatialError> {
    machine.guarded(|m| select_rank(m, lo, items, k, seed))
}

/// [`select_rank`] with explicit tuning (used by the `c`-ablation bench).
pub fn select_rank_cfg<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    k: u64,
    cfg: SelectionConfig,
) -> (Tracked<T>, SelectionStats) {
    let n = items.len() as u64;
    assert!(n > 0, "selection on an empty array");
    assert!(k >= 1 && k <= n, "rank {k} out of range 1..={n}");
    assert!(cfg.c >= 1.0, "sampling constant must be at least 1");
    let padded = zorder::next_power_of_four(n);
    assert_eq!(lo % padded, 0, "segment must be aligned to its padded length");

    let c = cfg.c;
    // Domain-separated stream: callers habitually reuse one seed for both
    // the input generator and the algorithm. With the raw seed, this RNG
    // would replay the exact draws that produced the data, and since
    // `gen_bool` and `gen_range` both key off the high bits of `next_u64`,
    // the Bernoulli "uniform" sample would degenerate to the ~p·n smallest
    // elements — pivots then never bracket the target rank and every run
    // takes the sort fallback. Salting decorrelates the streams while
    // keeping the run deterministic in `cfg.seed`.
    let mut rng = Rng::stream(cfg.seed, 0x005E_1EC7);
    let mut stats = SelectionStats::default();

    // Wrap keys with uids for a strict total order; `active[i]` mirrors the
    // activity flag resident at each element's PE.
    let elems: Vec<Tracked<Keyed<T>>> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.map(|key| Keyed::new(key, i as u64)))
        .collect();
    let mut active: Vec<bool> = vec![true; n as usize];
    let mut big_n = n;
    let mut k = k;
    let mut flipped = false;
    // Paper §VI: w.l.o.g. k ≤ ⌈n/2⌉ — select the (n+1−k)-th under the
    // reversed comparator otherwise.
    if k > n.div_ceil(2) {
        k = n + 1 - k;
        flipped = true;
        stats.flips += 1;
    }

    let threshold = (c * (n as f64).sqrt()).ceil() as u64;
    let ln_n = (n.max(2) as f64).ln();

    while big_n > threshold.max(4) {
        stats.active_trajectory.push(big_n);
        stats.iterations += 1;

        // Step 1: Bernoulli(c/√N) sampling at each active PE (local).
        let p = (c / (big_n as f64).sqrt()).min(1.0);
        let sampled: Vec<bool> = active.iter().map(|&a| a && rng.gen_bool(p)).collect();
        let s_len = sampled.iter().filter(|&&s| s).count() as u64;
        stats.sample_sizes.push(s_len);
        if s_len == 0 {
            continue; // empty sample: redraw (vanishing probability)
        }

        // Step 2: scan assigns each sampled element its index; route the
        // sample into a compact aligned square next to the data.
        let mut indicator: Vec<Tracked<u64>> =
            elems.iter().enumerate().map(|(i, t)| t.with_value(u64::from(sampled[i]))).collect();
        indicator.extend(machine.place_batch(vec![0u64; (padded - n) as usize], |i| {
            zorder::coord_of(lo + n + i as u64)
        }));
        let idx = scan_exclusive(machine, lo, indicator, 0, &|a, b| a + b);
        let s_pad = zorder::next_power_of_four(s_len);
        let g_lo = sorting::allpairs::scratch_for(lo, s_pad);
        let mut sample_sends: Vec<(Tracked<Keyed<T>>, spatial_model::Coord)> =
            Vec::with_capacity(s_len as usize);
        for (i, ix) in idx.into_iter().enumerate() {
            if i < n as usize && sampled[i] {
                let slot = *ix.value();
                sample_sends.push((elems[i].duplicate(), zorder::coord_of(g_lo + slot)));
            }
            machine.discard(ix);
        }
        let sample = machine.send_batch(sample_sends);

        // Step 3: Bitonic-sort the sample under the effective order and read
        // off the two pivots by rank.
        let sorted = bitonic_sort_z(machine, g_lo, sample, flipped);
        let (r_rank, l_rank) = pivot_ranks(big_n, k, s_len, ln_n, c);
        let s_r = sorted[(r_rank - 1) as usize].duplicate();
        let s_l = l_rank.map(|l| sorted[(l - 1) as usize].duplicate());
        for t in sorted {
            machine.discard(t);
        }

        // Step 4: broadcast the pivots over the input segment.
        let r_copies = broadcast_z(machine, s_r, lo, lo + padded);
        let l_copies = s_l.map(|sl| broadcast_z(machine, sl, lo, lo + padded));

        // Step 5: count active elements outside [s_l, s_r] (reduce).
        let mut below = vec![false; n as usize];
        let mut above = vec![false; n as usize];
        let mut outside: Vec<Tracked<(u64, u64)>> = Vec::with_capacity(padded as usize);
        for i in 0..padded as usize {
            let rc = &r_copies[i];
            let is_above = if i < n as usize && active[i] {
                let v = elems[i].zip_with(rc, |e, r| eff_lt(r, e, flipped));
                let b = *v.value();
                machine.discard(v);
                b
            } else {
                false
            };
            let is_below = match &l_copies {
                Some(lc) if i < n as usize && active[i] => {
                    let v = elems[i].zip_with(&lc[i], |e, l| eff_lt(e, l, flipped));
                    let b = *v.value();
                    machine.discard(v);
                    b
                }
                _ => false,
            };
            if i < n as usize {
                below[i] = is_below;
                above[i] = is_above;
            }
            outside.push(rc.with_value((u64::from(is_below), u64::from(is_above))));
        }
        for c in r_copies {
            machine.discard(c);
        }
        if let Some(lc) = l_copies {
            for c in lc {
                machine.discard(c);
            }
        }
        let counts = reduce_z(machine, outside, lo, &|a, b| (a.0 + b.0, a.1 + b.1));
        let (n_below, n_above) = *counts.value();
        machine.discard(counts);

        // Pivot failure (Lemma VI.1): fall back to sorting everything.
        if n_below >= k || n_above >= big_n - k {
            stats.fallbacks += 1;
            stats.active_trajectory.push(big_n);
            return (finish_by_sorting(machine, lo, elems, &active, k, flipped), stats);
        }

        // Step 6: deactivate everything outside the pivot interval.
        k -= n_below;
        for i in 0..n as usize {
            if below[i] || above[i] {
                active[i] = false;
            }
        }
        big_n -= n_below + n_above;
        debug_assert_eq!(big_n, active.iter().filter(|&&a| a).count() as u64);

        // Step 7: keep k in the lower half by flipping the comparator.
        if k > big_n.div_ceil(2) {
            k = big_n + 1 - k;
            flipped = !flipped;
            stats.flips += 1;
        }
    }
    stats.active_trajectory.push(big_n);

    (finish_by_sorting(machine, lo, elems, &active, k, flipped), stats)
}

/// Effective order: `a < b`, reversed when `flipped`.
fn eff_lt<P: Ord>(a: &P, b: &P, flipped: bool) -> bool {
    if flipped {
        b < a
    } else {
        a < b
    }
}

/// The 1-based sample ranks of the upper/lower pivots (§VI step 3).
///
/// Upper pivot rank `r = min(|S|, c·k/√N + (c/2)·N^{1/4}·√ln n)`; the lower
/// pivot exists only when `k ≥ ½·N^{3/4}·√ln n` and has rank
/// `l = c·k/√N − (c/2)·N^{1/4}·√ln n` (dummy `-∞` otherwise).
fn pivot_ranks(big_n: u64, k: u64, s_len: u64, ln_n: f64, c: f64) -> (u64, Option<u64>) {
    let nf = big_n as f64;
    let center = c * k as f64 / nf.sqrt();
    let spread = 0.5 * c * nf.powf(0.25) * ln_n.sqrt();
    let r = (center + spread).ceil().max(1.0) as u64;
    let r = r.min(s_len);
    let l = if (k as f64) >= 0.5 * nf.powf(0.75) * ln_n.sqrt() {
        let l = (center - spread).floor() as i64;
        (l >= 1).then_some((l as u64).min(s_len))
    } else {
        None
    };
    (r, l)
}

/// Bitonic sort of a sample resident on the Z-segment `[lo, lo+len)` under
/// the (possibly flipped) effective order. Pads to a power of two with
/// effective `+∞` sentinels.
fn bitonic_sort_z<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    sample: Vec<Tracked<Keyed<T>>>,
    flipped: bool,
) -> Vec<Tracked<Keyed<T>>> {
    // Wrap in a flip-aware ordering so the data-oblivious network sorts the
    // effective order directly; sentinels sort to the tail either way.
    #[derive(Clone, PartialEq, Eq)]
    enum W<T> {
        Val(bool, Keyed<T>), // (flipped, key)
        Inf(u64),
    }
    impl<T: Ord> Ord for W<T> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            match (self, o) {
                (W::Inf(a), W::Inf(b)) => a.cmp(b),
                (W::Inf(_), W::Val(..)) => std::cmp::Ordering::Greater,
                (W::Val(..), W::Inf(_)) => std::cmp::Ordering::Less,
                (W::Val(f, a), W::Val(_, b)) => {
                    if *f {
                        b.cmp(a)
                    } else {
                        a.cmp(b)
                    }
                }
            }
        }
    }
    impl<T: Ord> PartialOrd for W<T> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    let len = sample.len();
    let padded = (len as u64).next_power_of_two();
    let mut wires: Vec<Tracked<W<T>>> =
        sample.into_iter().map(|t| t.map(|kd| W::Val(flipped, kd))).collect();
    wires.extend(machine.place_batch((len as u64..padded).map(W::Inf).collect(), |i| {
        zorder::coord_of(lo + len as u64 + i as u64)
    }));
    let net = sortnet::bitonic_sort(padded as usize);
    let out = sortnet::run_on_coords(machine, &net, wires);
    let mut res = Vec::with_capacity(len);
    for t in out {
        match t.value() {
            W::Val(..) => res.push(t.map(|w| match w {
                W::Val(_, kd) => kd,
                W::Inf(_) => unreachable!(),
            })),
            W::Inf(_) => machine.discard(t),
        }
    }
    res
}

/// Terminal phase (and pivot-failure fallback): gather the active elements
/// into a compact segment, 2D-mergesort them, and pick the k-th under the
/// effective order.
fn finish_by_sorting<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    elems: Vec<Tracked<Keyed<T>>>,
    active: &[bool],
    k: u64,
    flipped: bool,
) -> Tracked<T> {
    let mut survivors: Vec<Tracked<Keyed<T>>> = Vec::new();
    for (i, t) in elems.into_iter().enumerate() {
        if active[i] {
            survivors.push(t);
        } else {
            machine.discard(t);
        }
    }
    let m = survivors.len() as u64;
    debug_assert!(k >= 1 && k <= m);
    // Compact into an aligned segment near the data, then sort (normal
    // order) and convert the flipped rank.
    let g_lo = sorting::allpairs::scratch_for(lo, zorder::next_power_of_four(m));
    let compact: Vec<Tracked<Keyed<T>>> = machine.send_batch(
        survivors
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let dst = zorder::coord_of(g_lo + i as u64);
                (t, dst)
            })
            .collect(),
    );
    let sorted = sort_z(machine, g_lo, compact);
    let idx = if flipped { m - k } else { k - 1 };
    let mut res = None;
    for (i, t) in sorted.into_iter().enumerate() {
        if i as u64 == idx {
            res = Some(t.map(|kd| kd.key));
        } else {
            machine.discard(t);
        }
    }
    res.expect("rank within bounds")
}

/// Selects multiple quantiles of the same array (the "nonparametric
/// statistics" use-case of §VI's opening \[54\]).
///
/// `qs` are fractions in `(0, 1]`; quantile `q` maps to rank `⌈q·n⌉`.
/// Each quantile runs one (independent) §VI selection over duplicated
/// inputs, so the total energy is `O(|qs|·n)` — still polynomially below
/// one full sort for constant `|qs|`.
pub fn quantiles<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: &[Tracked<T>],
    qs: &[f64],
    seed: u64,
) -> Vec<(f64, T)> {
    let n = items.len() as u64;
    assert!(n > 0);
    qs.iter()
        .enumerate()
        .map(|(i, &q)| {
            assert!(q > 0.0 && q <= 1.0, "quantile {q} out of (0, 1]");
            let k = ((q * n as f64).ceil() as u64).clamp(1, n);
            let dup: Vec<Tracked<T>> = items.iter().map(|t| t.duplicate()).collect();
            let (v, _) = select_rank(machine, lo, dup, k, seed.wrapping_add(i as u64));
            (q, v.into_value())
        })
        .collect()
}

/// Convenience wrapper: selects the median (upper median for even `n`).
pub fn select_median<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    seed: u64,
) -> (Tracked<T>, SelectionStats) {
    let k = (items.len() as u64).div_ceil(2);
    select_rank(machine, lo, items, k, seed)
}

/// Places values on `[lo, lo+n)` and selects rank `k` — the one-call API
/// used by examples and benches.
///
/// ```
/// use spatial_model::Machine;
/// use selection::select_rank_values;
///
/// let mut m = Machine::new();
/// let vals: Vec<i64> = (0..100).map(|i| (i * 37) % 101).collect();
/// let (third_smallest, stats) = select_rank_values(&mut m, 0, vals, 3, 42);
/// assert_eq!(third_smallest, 2);
/// assert_eq!(stats.fallbacks, 0);
/// ```
pub fn select_rank_values<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    values: Vec<T>,
    k: u64,
    seed: u64,
) -> (T, SelectionStats) {
    let items = place_z(machine, lo, values);
    let (t, stats) = select_rank(machine, lo, items, k, seed);
    (t.into_value(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: i64) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 2654435761 + seed) % 100003) - 50000).collect()
    }

    fn reference_kth(vals: &[i64], k: u64) -> i64 {
        let mut v = vals.to_vec();
        v.sort_unstable();
        v[(k - 1) as usize]
    }

    #[test]
    fn selects_exact_rank_small() {
        for n in [1usize, 2, 5, 16, 64] {
            let vals = pseudo(n, 3);
            for k in 1..=n as u64 {
                let mut m = Machine::new();
                let (got, _) = select_rank_values(&mut m, 0, vals.clone(), k, 99);
                assert_eq!(got, reference_kth(&vals, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn selects_median_of_large_arrays_multiple_seeds() {
        for &n in &[1024usize, 4096] {
            let vals = pseudo(n, 7);
            let k = (n as u64) / 2;
            let expect = reference_kth(&vals, k);
            for seed in 0..5u64 {
                let mut m = Machine::new();
                let (got, stats) = select_rank_values(&mut m, 0, vals.clone(), k, seed);
                assert_eq!(got, expect, "n={n} seed={seed}");
                assert!(stats.iterations <= 8, "too many iterations: {}", stats.iterations);
            }
        }
    }

    #[test]
    fn selects_extreme_ranks() {
        let n = 4096usize;
        let vals = pseudo(n, 11);
        for &k in &[1u64, 2, 100, n as u64 - 1, n as u64] {
            let mut m = Machine::new();
            let (got, _) = select_rank_values(&mut m, 0, vals.clone(), k, 5);
            assert_eq!(got, reference_kth(&vals, k), "k={k}");
        }
    }

    #[test]
    fn handles_heavy_duplicates() {
        let n = 1024usize;
        let vals: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        for &k in &[1u64, 341, 342, 512, 683, 1024] {
            let mut m = Machine::new();
            let (got, _) = select_rank_values(&mut m, 0, vals.clone(), k, 1);
            assert_eq!(got, reference_kth(&vals, k), "k={k}");
        }
    }

    #[test]
    fn energy_is_near_linear() {
        // Theorem VI.3: O(n) energy (vs Θ(n^{3/2}) for sorting). 4x n should
        // give ≈4x energy; reject 8x (the sorting rate).
        let energy = |n: usize| {
            let vals = pseudo(n, 13);
            let mut m = Machine::new();
            let (_, stats) = select_rank_values(&mut m, 0, vals, n as u64 / 2, 7);
            assert_eq!(stats.fallbacks, 0, "fallback would skew the energy reading");
            m.energy() as f64
        };
        let growth = energy(16384) / energy(4096);
        assert!(growth < 6.5, "expected ≈4x energy for 4x n, got {growth:.1}x");
    }

    #[test]
    fn active_count_collapses_per_lemma() {
        // Lemma VI.2: N_{t+1} ≤ (1+ε)·N_t^{3/4}·√ln n w.h.p.
        let n = 16384usize;
        let vals = pseudo(n, 17);
        let mut m = Machine::new();
        let (_, stats) = select_rank_values(&mut m, 0, vals, n as u64 / 2, 23);
        let ln_n = (n as f64).ln();
        for w in stats.active_trajectory.windows(2) {
            let bound = 2.0 * (w[0] as f64).powf(0.75) * ln_n.sqrt() + 2.0 * C * (n as f64).sqrt();
            assert!((w[1] as f64) <= bound, "N went {} -> {} exceeding {bound:.0}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let vals = pseudo(1024, 29);
        let run = |seed| {
            let mut m = Machine::new();
            let (v, stats) = select_rank_values(&mut m, 0, vals.clone(), 300, seed);
            (v, m.report(), stats.iterations)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn quantiles_match_order_statistics() {
        let n = 2048usize;
        let vals = pseudo(n, 31);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut m = Machine::new();
        let items = collectives::zarray::place_z(&mut m, 0, vals);
        let got = quantiles(&mut m, 0, &items, &[0.25, 0.5, 0.75, 1.0], 5);
        for (q, v) in got {
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            assert_eq!(v, sorted[k - 1], "q = {q}");
        }
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn quantiles_reject_zero() {
        let mut m = Machine::new();
        let items = collectives::zarray::place_z(&mut m, 0, vec![1i64, 2, 3, 4]);
        let _ = quantiles(&mut m, 0, &items, &[0.0], 1);
    }

    #[test]
    fn sorted_and_reverse_inputs() {
        let n = 1024usize;
        let asc: Vec<i64> = (0..n as i64).collect();
        let desc: Vec<i64> = (0..n as i64).rev().collect();
        for vals in [asc, desc] {
            let mut m = Machine::new();
            let (got, _) = select_rank_values(&mut m, 0, vals.clone(), 700, 3);
            assert_eq!(got, reference_kth(&vals, 700));
        }
    }
}
