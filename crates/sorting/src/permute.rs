//! Permutation routing and the Lemma V.1 lower-bound pattern.
//!
//! Any permutation can be realised by one direct message per element; the
//! paper's lower bound (Lemma V.1) exhibits a permutation — reversing the
//! row-major order — that forces `Ω(max(w,h)²·min(w,h))` energy on an
//! `h × w` subgrid, which is `Ω(n^{3/2})` on a square. Sorting implements
//! arbitrary permutations, so the bound transfers to sorting
//! (Corollary V.2) and, via permutation matrices, to SpMV (Lemma VIII.1).

use spatial_model::{Cost, Machine, SubGrid};

/// Routes value `i` from row-major cell `i` to row-major cell `perm[i]` of
/// `grid`, one message per element. Returns the cost of the permutation.
///
/// `perm` must be a permutation of `0..grid.len()`.
pub fn permute_row_major(machine: &mut Machine, grid: SubGrid, perm: &[u64]) -> Cost {
    let n = grid.len();
    assert_eq!(perm.len() as u64, n);
    let mut seen = vec![false; n as usize];
    for &p in perm {
        assert!(p < n && !std::mem::replace(&mut seen[p as usize], true), "not a permutation");
    }
    let before = machine.report();
    for (i, &p) in perm.iter().enumerate() {
        let v = machine.place(grid.rm_coord(i as u64), i as u64);
        let moved = machine.send_owned(v, grid.rm_coord(p));
        machine.discard(moved);
    }
    machine.report() - before
}

/// The reversal permutation `i ↦ n-1-i` of Lemma V.1's proof: elements in the
/// first third of the rows must cross to the last third.
pub fn reversal_perm(n: u64) -> Vec<u64> {
    (0..n).map(|i| n - 1 - i).collect()
}

/// A transpose-like permutation (row-major index of the transposed cell):
/// another `Θ(n^{3/2})` pattern on a square grid.
pub fn transpose_perm(side: u64) -> Vec<u64> {
    let n = side * side;
    (0..n).map(|i| (i % side) * side + i / side).collect()
}

/// Lower bound of Lemma V.1 for an `h × w` grid (up to the lemma's constant):
/// `max(w,h)² · min(w,h) / 9`.
pub fn permutation_energy_lower_bound(h: u64, w: u64) -> u64 {
    let (mx, mn) = (h.max(w), h.min(w));
    mx * mx * mn / 9
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::Coord;

    #[test]
    fn reversal_meets_the_lower_bound_on_squares() {
        for side in [8u64, 16, 32] {
            let n = side * side;
            let grid = SubGrid::square(Coord::ORIGIN, side);
            let mut m = Machine::new();
            let cost = permute_row_major(&mut m, grid, &reversal_perm(n));
            let lb = permutation_energy_lower_bound(side, side);
            assert!(cost.energy >= lb, "side {side}: energy {} < bound {lb}", cost.energy);
            // And it is Θ(n^{3/2}): also check an upper constant.
            assert!(cost.energy <= 2 * n * side, "side {side}: energy {} too large", cost.energy);
        }
    }

    #[test]
    fn reversal_on_rectangles_scales_with_max_dim_squared() {
        let grid = SubGrid::new(Coord::ORIGIN, 64, 4);
        let mut m = Machine::new();
        let cost = permute_row_major(&mut m, grid, &reversal_perm(grid.len()));
        let lb = permutation_energy_lower_bound(64, 4);
        assert!(cost.energy >= lb, "energy {} < bound {lb}", cost.energy);
    }

    #[test]
    fn identity_costs_nothing() {
        let grid = SubGrid::square(Coord::ORIGIN, 8);
        let mut m = Machine::new();
        let perm: Vec<u64> = (0..64).collect();
        let cost = permute_row_major(&mut m, grid, &perm);
        assert_eq!(cost.energy, 0);
    }

    #[test]
    fn transpose_is_also_expensive() {
        let side = 16u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut m = Machine::new();
        let cost = permute_row_major(&mut m, grid, &transpose_perm(side));
        // Transpose moves Θ(n) elements a Θ(√n) distance.
        assert!(cost.energy as f64 > 0.2 * (side * side) as f64 * side as f64);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutations() {
        let grid = SubGrid::square(Coord::ORIGIN, 2);
        let mut m = Machine::new();
        let _ = permute_row_major(&mut m, grid, &[0, 0, 1, 2]);
    }
}
