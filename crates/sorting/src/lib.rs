//! # Energy-optimal spatial sorting (paper §V)
//!
//! The paper's sorting toolchain on the Spatial Computer Model:
//!
//! * [`allpairs`] — All-Pairs Sort (Lemma V.5): compare everything with
//!   everything on an exploded `m × m` grid; `O(m^{5/2})` energy but only
//!   `O(log m)` depth. Used on small samples inside the rank routines.
//! * [`rank2`] — deterministic rank selection in two sorted arrays
//!   (Lemma V.6): `O(n^{5/4})` energy, `O(log n)` depth, `O(√n)` distance.
//! * [`merge2d`] — the 2D merge (Lemma V.7, Fig. 3): rank-split into four
//!   quarters and recurse; `O(n^{3/2})` energy, `O(log² n)` depth.
//! * [`mergesort`] — 2D Mergesort (Theorem V.8): sort the four quadrants,
//!   merge pairwise; `O(n^{3/2})` energy (optimal by the Lemma V.1
//!   permutation bound), `O(log³ n)` depth, `O(√n)` distance.
//! * [`permute`] — direct permutation routing, including the row-reversal
//!   pattern realising the Lemma V.1 lower bound and the Z-order ↔ row-major
//!   layout conversions.
//!
//! ## Layout convention
//!
//! Arrays occupy contiguous ranges of the global Z-order curve (a *Z-segment*
//! `[lo, lo+len)`); a Z-segment of length `L` spans `O(√L)` grid diameter, so
//! per-recursion-level permutations cost `O(L^{3/2})` — the same recurrence
//! as the paper's square + "mirrored-L" layout (see DESIGN.md for the
//! substitution argument). [`mergesort::sort_row_major`] converts from/to
//! row-major input at the ends, mirroring Fig. 3(d).

pub mod allpairs;
pub mod keyed;
pub mod merge2d;
pub mod mergesort;
pub mod permute;
pub mod rank2;
pub mod shearsort;

pub use allpairs::{allpairs_rank, allpairs_sort_to_z, scratch_for};
pub use keyed::Keyed;
pub use merge2d::merge_adjacent;
pub use mergesort::{sort_row_major, sort_z, sort_z_values, try_sort_z};
pub use rank2::{multi_rank_split, rank_split};
pub use shearsort::{shearsort_row_major, shearsort_snake};
