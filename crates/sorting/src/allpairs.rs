//! All-Pairs Sort (paper §V-C(a), Lemma V.5).
//!
//! "Explode" the computation onto an `M × M` scratch square (`M` = input size
//! padded to a power of four): block `Γ_i` — the `i`-th aligned `M`-cell
//! sub-square in Z-order — computes the rank of element `A_i` by comparing it
//! against a full copy of the array. Costs (Lemma V.5): `O(m^{5/2})` energy,
//! `O(log m)` depth, `O(m)` distance. The quadratic-plus energy is the price
//! of the very low depth; the rank routines only ever run it on
//! `O(√n)`-sized samples and windows.
//!
//! Scratch placement: the caller passes an *aligned* Z-offset (see
//! [`scratch_for`]); the scratch square may overlap resident data — each PE
//! holds O(1) extra words during the sort, which the model allows.

use spatial_model::{zorder, Coord, Machine, Tracked};

/// The aligned Z-offset of a scratch square of at least `cells` cells that
/// contains (or sits next to) Z-index `near`.
///
/// Alignment guarantees every block boundary in the all-pairs layout is an
/// aligned sub-square; containment keeps the scratch within `O(√cells)`
/// distance of the data it serves.
pub fn scratch_for(near: u64, cells: u64) -> u64 {
    let s = zorder::next_power_of_four(cells);
    (near / s) * s
}

/// Computes the rank of every element under the total order of `P`.
///
/// Returns, in **input order**, each element paired with its rank in the
/// sorted sequence (`0` = smallest), resident at its block corner inside the
/// scratch square at `scratch_lo` (which must be aligned to the scratch
/// size; use [`scratch_for`]).
///
/// # Panics
/// Panics if two elements compare equal (wrap inputs in
/// [`crate::Keyed`] to guarantee distinctness) or if `scratch_lo` is
/// misaligned.
pub fn allpairs_rank<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    items: Vec<Tracked<P>>,
    scratch_lo: u64,
) -> Vec<Tracked<(P, u64)>> {
    allpairs_rank_inner(machine, items, scratch_lo, false)
}

/// [`allpairs_rank`] with an escape hatch forcing the materializing per-item
/// phases even on a bare machine — the reference the closed-form kernel is
/// tested against.
fn allpairs_rank_inner<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    items: Vec<Tracked<P>>,
    scratch_lo: u64,
    force_replay: bool,
) -> Vec<Tracked<(P, u64)>> {
    let m = items.len() as u64;
    assert!(m > 0, "all-pairs rank of an empty array");
    let bm = zorder::next_power_of_four(m); // cells per block, and #blocks
    let total = bm * bm;
    assert_eq!(scratch_lo % total, 0, "scratch offset must be aligned to the scratch size");

    // Step 0 (input staging): bring the array into block 0, element j at the
    // block's j-th Z-cell — one batched move.
    let staged: Vec<Tracked<P>> = machine.send_batch(
        items
            .into_iter()
            .enumerate()
            .map(|(j, t)| (t, zorder::coord_of(scratch_lo + j as u64)))
            .collect(),
    );

    // Step 1 (scatter): element i also goes to the corner of block i.
    // Element 0 is already at block 0's corner (a free duplicate, as in the
    // open-coded loop); the rest are one batched copy.
    let scatter: Vec<(&Tracked<P>, Coord)> = staged
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, t)| (t, zorder::coord_of(scratch_lo + i as u64 * bm)))
        .collect();
    let mut corners: Vec<Tracked<P>> = Vec::with_capacity(m as usize);
    corners.push(staged[0].duplicate());
    corners.extend(machine.send_batch_copy(&scatter));
    drop(scatter);

    // On a bare machine the three remaining phases (replicate, broadcast,
    // compare, reduce) are charged in closed form: their message DAG is
    // data-independent, so the ranks resolve host-side and the machine
    // charges the exact aggregate Cost and output paths without
    // materializing the O(m·bm) intermediate copies. Any armed instrument
    // takes the materializing path below and observes the per-item stream.
    if !force_replay && machine.is_bare() && m > 1 {
        let mut order: Vec<usize> = (0..m as usize).collect();
        order.sort_unstable_by(|&x, &y| staged[x].value().cmp(staged[y].value()));
        for w in order.windows(2) {
            assert!(
                staged[w[0]].value() != staged[w[1]].value(),
                "all-pairs rank requires distinct elements"
            );
        }
        let mut ranks = vec![0u64; m as usize];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r as u64;
        }
        let staged_paths: Vec<spatial_model::Path> = staged.iter().map(|t| t.path()).collect();
        for t in staged {
            machine.discard(t);
        }
        return machine.allpairs_square_finish(&staged_paths, corners, &ranks, scratch_lo, bm);
    }

    // Step 3 (array copy): replicate the whole array into every block that
    // hosts an element, treating blocks as units of a Z-quadrant broadcast.
    // Level order: every level's cross-block replication is one uniform
    // batch per target quadrant, because aligned blocks put corresponding
    // cells at one common displacement.
    let block_copies: Vec<Vec<Tracked<P>>> = copy_to_blocks(machine, staged, bm, m, scratch_lo);

    // Step 2 (per-block broadcast): element i floods block i. All blocks
    // advance level by level, so each level's sends are uniform batches too.
    let bcasts: Vec<Vec<Tracked<P>>> = bcast_all_blocks(
        machine,
        corners.iter().map(|c| c.duplicate()).collect(),
        scratch_lo,
        bm,
        bm,
    );

    // Step 4 (compare): local, free. 1 if the resident copy element precedes
    // A_i under the total order.
    let mut per_block_indicators: Vec<Vec<Tracked<u64>>> = Vec::with_capacity(m as usize);
    for (i, (mine, copy)) in bcasts.into_iter().zip(&block_copies).enumerate() {
        let mut indicators: Vec<Tracked<u64>> = Vec::with_capacity(bm as usize);
        for (j, b) in mine.into_iter().enumerate() {
            let ind = if j < copy.len() {
                copy[j].zip_with(&b, |a_j, a_i| {
                    assert!(a_j != a_i || j == i, "all-pairs rank requires distinct elements");
                    u64::from(a_j < a_i)
                })
            } else {
                b.with_value(0u64)
            };
            machine.discard(b);
            indicators.push(ind);
        }
        per_block_indicators.push(indicators);
    }
    for copy in block_copies {
        for c in copy {
            machine.discard(c);
        }
    }

    // Step 5 (reduce): rank = sum of indicators onto each block corner,
    // again level by level across all blocks at once.
    let ranks = reduce_all_blocks(machine, per_block_indicators, scratch_lo, bm);

    corners
        .into_iter()
        .zip(ranks)
        .map(|(corner, rank)| {
            let ranked = corner.zip_with(&rank, |p, r| (p.clone(), *r));
            machine.discard(corner);
            machine.discard(rank);
            ranked
        })
        .collect()
}

/// All-Pairs Sort: ranks the elements and routes each to Z-index
/// `out_lo + rank`. Returns the sorted array indexed by rank.
pub fn allpairs_sort_to_z<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    items: Vec<Tracked<P>>,
    scratch_lo: u64,
    out_lo: u64,
) -> Vec<Tracked<P>> {
    let m = items.len();
    let ranked = allpairs_rank(machine, items, scratch_lo);
    let routed = machine.send_batch(
        ranked
            .into_iter()
            .map(|t| {
                let dst = zorder::coord_of(out_lo + t.value().1);
                (t, dst)
            })
            .collect(),
    );
    let mut out: Vec<Option<Tracked<P>>> = (0..m).map(|_| None).collect();
    for moved in routed {
        let rank = moved.value().1;
        let slot = &mut out[rank as usize];
        assert!(slot.is_none(), "duplicate rank {rank}");
        *slot = Some(moved.map(|(p, _)| p));
    }
    out.into_iter().map(|o| o.expect("ranks form a permutation")).collect()
}

/// Replicates the array held by block 0 into every block that hosts an
/// element (block index `< m_used`), level by level over the block-index
/// quadtree. At each level every holder block copies its `m_used` elements
/// into up to three target blocks; aligned blocks keep corresponding cells
/// at one common displacement per `(level, quadrant)`, so each of those
/// copies is a single [`spatial_model::BatchPattern::Uniform`] batch.
/// Charges exactly what the depth-first per-element recursion charges.
/// Returns one array copy per hosting block, in block order.
fn copy_to_blocks<P: Clone + Send + Sync>(
    machine: &mut Machine,
    holder: Vec<Tracked<P>>,
    bm: u64,
    m_used: u64,
    scratch_lo: u64,
) -> Vec<Vec<Tracked<P>>> {
    // Frontier of (block index, that block's array copy), kept in ascending
    // block order.
    let mut frontier: Vec<(u64, Vec<Tracked<P>>)> = vec![(0, holder)];
    let mut span = bm;
    while span > 1 {
        let q = span / 4;
        let mut added: Vec<(u64, Vec<Tracked<P>>)> = Vec::new();
        for t in 1..4 {
            // One uniform cross-block batch per target quadrant: block b
            // replicates to block b + t·q, for every frontier block b that
            // has a target hosting an element. Blocks created at this level
            // join the frontier only once the level completes.
            let sends: Vec<(&Tracked<P>, Coord)> = frontier
                .iter()
                .filter(|(b, _)| b + t * q < m_used)
                .flat_map(|(b, copy)| {
                    let target_lo = scratch_lo + (b + t * q) * bm;
                    copy.iter()
                        .enumerate()
                        .map(move |(j, el)| (el, zorder::coord_of(target_lo + j as u64)))
                })
                .collect();
            if sends.is_empty() {
                continue;
            }
            let mut arrived = machine.send_batch_copy(&sends).into_iter();
            drop(sends);
            added.extend(
                frontier
                    .iter()
                    .filter(|(b, _)| b + t * q < m_used)
                    .map(|(b, copy)| (b + t * q, arrived.by_ref().take(copy.len()).collect())),
            );
        }
        frontier.extend(added);
        frontier.sort_by_key(|(b, _)| *b);
        span = q;
    }
    debug_assert!(frontier.iter().enumerate().all(|(i, (b, _))| i as u64 == *b));
    frontier.into_iter().map(|(_, copy)| copy).collect()
}

/// Z-quadrant broadcast inside every block at once, level by level: each
/// level's sends across all blocks share one displacement per quadrant and
/// are charged as uniform batches. `roots[i]` floods the block at
/// `scratch_lo + i·bm`; returns, per block, one value per cell indexed by
/// Z-offset. Charges exactly what the per-block recursive broadcast charges.
fn bcast_all_blocks<T: Clone + Send + Sync>(
    machine: &mut Machine,
    roots: Vec<Tracked<T>>,
    scratch_lo: u64,
    bm: u64,
    len: u64,
) -> Vec<Vec<Tracked<T>>> {
    let n_blocks = roots.len();
    let mut slots: Vec<Vec<Option<Tracked<T>>>> =
        (0..n_blocks).map(|_| (0..len).map(|_| None).collect()).collect();
    for (b, root) in roots.into_iter().enumerate() {
        debug_assert_eq!(root.loc(), zorder::coord_of(scratch_lo + b as u64 * bm));
        slots[b][0] = Some(root);
    }
    // Offsets filled so far (identical in every block); each level copies
    // all of them one quadrant over, tripling the set.
    let mut filled: Vec<u64> = vec![0];
    let mut span = len;
    while span > 1 {
        let q = span / 4;
        for i in 1..4 {
            let sends: Vec<(&Tracked<T>, Coord)> = slots
                .iter()
                .enumerate()
                .flat_map(|(b, block)| {
                    let block_lo = scratch_lo + b as u64 * bm;
                    filled.iter().map(move |&off| {
                        let src = block[off as usize].as_ref().expect("filled offset");
                        (src, zorder::coord_of(block_lo + off + i * q))
                    })
                })
                .collect();
            let mut arrived = machine.send_batch_copy(&sends).into_iter();
            drop(sends);
            for block in &mut slots {
                for &off in &filled {
                    block[(off + i * q) as usize] = Some(arrived.next().expect("one per send"));
                }
            }
        }
        let mut next_filled = Vec::with_capacity(filled.len() * 4);
        for i in 0..4 {
            next_filled.extend(filled.iter().map(|&off| off + i * q));
        }
        next_filled.sort_unstable();
        filled = next_filled;
        span = q;
    }
    slots
        .into_iter()
        .map(|block| block.into_iter().map(|o| o.expect("covered")).collect())
        .collect()
}

/// Z-quadrant sum-reduce inside every block at once, bottom-up level by
/// level; block `b`'s result lands on its corner. Sibling partials are
/// folded in ascending quadrant order, exactly as the per-block recursion
/// does. `per_block[b]` holds the leaf values of the block at
/// `scratch_lo + b·bm`, indexed by Z-offset.
fn reduce_all_blocks(
    machine: &mut Machine,
    per_block: Vec<Vec<Tracked<u64>>>,
    scratch_lo: u64,
    bm: u64,
) -> Vec<Tracked<u64>> {
    // vals[b][k] is the partial sum of the k-th aligned sub-square of the
    // current level, resident at that sub-square's corner (Z-offset
    // k·stride within the block).
    let mut vals: Vec<Vec<Tracked<u64>>> = per_block;
    let mut stride = 1u64;
    while vals.first().is_some_and(|v| v.len() > 1) {
        let groups = vals[0].len() / 4;
        // Decompose each group of 4 siblings: the corner partial seeds the
        // accumulator, the three high siblings travel to the corner — one
        // uniform batch per sibling index (displacement −decode(i·stride)
        // for every group of every block).
        let mut keep: Vec<Vec<Tracked<u64>>> = Vec::with_capacity(vals.len());
        let mut sib_sends: [Vec<(Tracked<u64>, Coord)>; 3] =
            std::array::from_fn(|_| Vec::with_capacity(vals.len() * groups));
        for (b, block) in vals.into_iter().enumerate() {
            let block_lo = scratch_lo + b as u64 * bm;
            let mut it = block.into_iter();
            let mut corners = Vec::with_capacity(groups);
            for g in 0..groups {
                let corner = zorder::coord_of(block_lo + 4 * g as u64 * stride);
                corners.push(it.next().expect("corner partial"));
                for s in &mut sib_sends {
                    s.push((it.next().expect("sibling partial"), corner));
                }
            }
            keep.push(corners);
        }
        let mut arrived: Vec<std::vec::IntoIter<Tracked<u64>>> =
            sib_sends.into_iter().map(|s| machine.send_batch(s).into_iter()).collect();
        // Fold arrivals into the corner accumulators in ascending sibling
        // order, exactly as the per-block recursion does.
        let mut next: Vec<Vec<Tracked<u64>>> = Vec::with_capacity(keep.len());
        for corners in keep {
            let mut level: Vec<Tracked<u64>> = Vec::with_capacity(groups);
            for mut acc in corners {
                for it in &mut arrived {
                    let arr = it.next().expect("one arrival per group");
                    let combined = acc.zip_with(&arr, |x, y| x + y);
                    machine.discard(arr);
                    machine.discard(std::mem::replace(&mut acc, combined));
                }
                level.push(acc);
            }
            next.push(level);
        }
        vals = next;
        stride *= 4;
    }
    vals.into_iter().map(|mut v| v.pop().expect("one partial per block")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::{attach_uids, detach_uids};
    use collectives::zarray::{place_z, read_values};

    fn run_sort(vals: Vec<i64>) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let n = vals.len() as u64;
        let items = attach_uids(place_z(&mut m, 0, vals));
        let cells = zorder::next_power_of_four(n) * zorder::next_power_of_four(n);
        let sorted = allpairs_sort_to_z(&mut m, items, scratch_for(0, cells), 0);
        (m, read_values(detach_uids(sorted)))
    }

    #[test]
    fn sorts_small_arrays_of_every_size() {
        for n in 1..=20usize {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 11 - 5).collect();
            let mut expect = vals.clone();
            expect.sort();
            let (_, got) = run_sort(vals);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates_stably() {
        let vals = vec![3i64, 1, 3, 1, 3, 1, 2, 2];
        let mut m = Machine::new();
        let items = attach_uids(place_z(&mut m, 0, vals.clone()));
        let sorted = allpairs_sort_to_z(&mut m, items, scratch_for(0, 16 * 16), 0);
        let got: Vec<(i64, u64)> = sorted.iter().map(|t| (t.value().key, t.value().uid)).collect();
        // Stable: equal keys keep input order of uids.
        assert_eq!(got, vec![(1, 1), (1, 3), (1, 5), (2, 6), (2, 7), (3, 0), (3, 2), (3, 4)]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let vals: Vec<i64> = vec![9, -3, 7, 7, 0, 2, 2, 2, 14, 1];
        let mut m = Machine::new();
        let items = attach_uids(place_z(&mut m, 0, vals));
        let ranked = allpairs_rank(&mut m, items, 0);
        let mut ranks: Vec<u64> = ranked.iter().map(|t| t.value().1).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn energy_scales_as_m_to_the_five_halves() {
        // Lemma V.5: O(m^{5/2}) energy. 4x the input → ≈32x the energy.
        let energy = |n: usize| {
            let (m, _) = run_sort((0..n as i64).rev().collect());
            m.energy() as f64
        };
        let growth = energy(256) / energy(64);
        assert!(
            growth > 16.0 && growth < 80.0,
            "expected ≈32x energy growth for 4x m, got {growth:.1}x"
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        for &n in &[16usize, 64, 256] {
            let (m, _) = run_sort((0..n as i64).rev().collect());
            let bound = 10 * (n as f64).log2() as u64 + 10;
            assert!(m.report().depth <= bound, "n = {n}: depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn distance_is_linear_in_m() {
        for &n in &[64usize, 256] {
            let (m, _) = run_sort((0..n as i64).collect());
            assert!(
                m.report().distance <= 12 * n as u64,
                "n = {n}: distance {}",
                m.report().distance
            );
        }
    }

    #[test]
    fn closed_form_kernel_matches_materialized_replay() {
        // The closed-form charge must be bit-identical to the per-item
        // level-order phases: same Cost report, same output values, ranks,
        // locations and critical paths — for every size class (power of
        // four, just above, just below, tiny).
        for n in [2usize, 3, 4, 5, 7, 13, 16, 17, 29, 40, 64, 65] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 131) % 257 - 60).collect();
            let run = |force: bool| {
                let mut m = Machine::new();
                // Pre-route the inputs so staged paths are heterogeneous.
                let placed = place_z(&mut m, 0, vals.clone());
                let items: Vec<_> = placed
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        if i % 3 == 0 {
                            let loc = t.loc();
                            let away = m.send_owned(t, zorder::coord_of(4096 + i as u64));
                            m.send_owned(away, loc)
                        } else {
                            t
                        }
                    })
                    .collect();
                let items = attach_uids(items);
                let bm = zorder::next_power_of_four(n as u64);
                let ranked = allpairs_rank_inner(&mut m, items, scratch_for(0, bm * bm), force);
                let outs: Vec<(i64, u64, u64, spatial_model::Coord, spatial_model::Path)> = ranked
                    .iter()
                    .map(|t| (t.value().0.key, t.value().0.uid, t.value().1, t.loc(), t.path()))
                    .collect();
                (m.report(), outs)
            };
            let (fast_cost, fast_out) = run(false);
            let (ref_cost, ref_out) = run(true);
            assert_eq!(fast_cost, ref_cost, "Cost diverges at n = {n}");
            assert_eq!(fast_out, ref_out, "outputs diverge at n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "all-pairs rank requires distinct elements")]
    fn closed_form_kernel_rejects_duplicates() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![5i64, 5, 1, 2]);
        let _ = allpairs_rank(&mut m, items, 0);
    }

    #[test]
    fn scratch_for_aligns_and_localizes() {
        let s = scratch_for(1234, 1000);
        assert_eq!(s % zorder::next_power_of_four(1000), 0);
        assert!(s <= 1234);
        assert_eq!(scratch_for(0, 5), 0);
    }
}
