//! All-Pairs Sort (paper §V-C(a), Lemma V.5).
//!
//! "Explode" the computation onto an `M × M` scratch square (`M` = input size
//! padded to a power of four): block `Γ_i` — the `i`-th aligned `M`-cell
//! sub-square in Z-order — computes the rank of element `A_i` by comparing it
//! against a full copy of the array. Costs (Lemma V.5): `O(m^{5/2})` energy,
//! `O(log m)` depth, `O(m)` distance. The quadratic-plus energy is the price
//! of the very low depth; the rank routines only ever run it on
//! `O(√n)`-sized samples and windows.
//!
//! Scratch placement: the caller passes an *aligned* Z-offset (see
//! [`scratch_for`]); the scratch square may overlap resident data — each PE
//! holds O(1) extra words during the sort, which the model allows.

use spatial_model::{zorder, Machine, Tracked};

/// The aligned Z-offset of a scratch square of at least `cells` cells that
/// contains (or sits next to) Z-index `near`.
///
/// Alignment guarantees every block boundary in the all-pairs layout is an
/// aligned sub-square; containment keeps the scratch within `O(√cells)`
/// distance of the data it serves.
pub fn scratch_for(near: u64, cells: u64) -> u64 {
    let s = zorder::next_power_of_four(cells);
    (near / s) * s
}

/// Computes the rank of every element under the total order of `P`.
///
/// Returns, in **input order**, each element paired with its rank in the
/// sorted sequence (`0` = smallest), resident at its block corner inside the
/// scratch square at `scratch_lo` (which must be aligned to the scratch
/// size; use [`scratch_for`]).
///
/// # Panics
/// Panics if two elements compare equal (wrap inputs in
/// [`crate::Keyed`] to guarantee distinctness) or if `scratch_lo` is
/// misaligned.
pub fn allpairs_rank<P: Ord + Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<P>>,
    scratch_lo: u64,
) -> Vec<Tracked<(P, u64)>> {
    let m = items.len() as u64;
    assert!(m > 0, "all-pairs rank of an empty array");
    let bm = zorder::next_power_of_four(m); // cells per block, and #blocks
    let total = bm * bm;
    assert_eq!(scratch_lo % total, 0, "scratch offset must be aligned to the scratch size");

    // Step 0 (input staging): bring the array into block 0, element j at the
    // block's j-th Z-cell.
    let staged: Vec<Tracked<P>> = items
        .into_iter()
        .enumerate()
        .map(|(j, t)| machine.move_to(t, zorder::coord_of(scratch_lo + j as u64)))
        .collect();

    // Step 1 (scatter): element i also goes to the corner of block i.
    let corners: Vec<Tracked<P>> = staged
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let dst = zorder::coord_of(scratch_lo + i as u64 * bm);
            if i == 0 {
                t.duplicate()
            } else {
                machine.send(t, dst)
            }
        })
        .collect();

    // Step 3 (array copy): replicate the whole array into every block that
    // hosts an element, treating blocks as units of a Z-quadrant broadcast.
    let mut block_copies: Vec<Option<Vec<Tracked<P>>>> = (0..bm).map(|_| None).collect();
    copy_to_blocks(machine, staged, 0, bm, m, scratch_lo, bm, &mut block_copies);

    // Steps 2+4+5: broadcast A_i inside block i, compare, reduce the rank.
    let mut out = Vec::with_capacity(m as usize);
    for (i, corner) in corners.into_iter().enumerate() {
        let block_lo = scratch_lo + i as u64 * bm;
        let copy = block_copies[i].take().expect("block hosts the array copy");
        // Broadcast A_i over the block's cells (Z-quadrant tree).
        let mine = bcast_z_block(machine, corner.duplicate(), block_lo, bm);
        // Per-cell comparison: 1 if the resident copy element precedes A_i.
        let mut indicators: Vec<Tracked<u64>> = Vec::with_capacity(bm as usize);
        for (j, b) in mine.into_iter().enumerate() {
            let ind = if j < copy.len() {
                let v = copy[j].zip_with(&b, |a_j, a_i| {
                    assert!(a_j != a_i || j == i, "all-pairs rank requires distinct elements");
                    u64::from(a_j < a_i)
                });
                v
            } else {
                b.with_value(0u64)
            };
            machine.discard(b);
            indicators.push(ind);
        }
        for c in copy {
            machine.discard(c);
        }
        // Rank = sum of indicators, reduced onto the block corner.
        let rank = reduce_z_block(machine, indicators, block_lo);
        let ranked = corner.zip_with(&rank, |p, r| (p.clone(), *r));
        machine.discard(corner);
        machine.discard(rank);
        out.push(ranked);
    }
    out
}

/// All-Pairs Sort: ranks the elements and routes each to Z-index
/// `out_lo + rank`. Returns the sorted array indexed by rank.
pub fn allpairs_sort_to_z<P: Ord + Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<P>>,
    scratch_lo: u64,
    out_lo: u64,
) -> Vec<Tracked<P>> {
    let m = items.len();
    let ranked = allpairs_rank(machine, items, scratch_lo);
    let mut out: Vec<Option<Tracked<P>>> = (0..m).map(|_| None).collect();
    for t in ranked {
        let rank = t.value().1;
        let dst = zorder::coord_of(out_lo + rank);
        let moved = machine.move_to(t, dst);
        let slot = &mut out[rank as usize];
        assert!(slot.is_none(), "duplicate rank {rank}");
        *slot = Some(moved.map(|(p, _)| p));
    }
    out.into_iter().map(|o| o.expect("ranks form a permutation")).collect()
}

/// Replicates the array held by the block at Z-block-index `b0` into every
/// block with index in `[b0, b0 + span)` that hosts an element (`< m_used`),
/// recursing over block-index quadrants.
#[allow(clippy::too_many_arguments)]
fn copy_to_blocks<P: Clone>(
    machine: &mut Machine,
    holder: Vec<Tracked<P>>,
    b0: u64,
    span: u64,
    m_used: u64,
    scratch_lo: u64,
    bm: u64,
    out: &mut [Option<Vec<Tracked<P>>>],
) {
    if b0 >= m_used {
        for t in holder {
            machine.discard(t);
        }
        return;
    }
    if span == 1 {
        out[b0 as usize] = Some(holder);
        return;
    }
    let q = span / 4;
    let mut copies: Vec<(u64, Vec<Tracked<P>>)> = Vec::with_capacity(3);
    for t in 1..4 {
        let target = b0 + t * q;
        if target >= m_used {
            break;
        }
        let copy: Vec<Tracked<P>> = holder
            .iter()
            .enumerate()
            .map(|(j, el)| machine.send(el, zorder::coord_of(scratch_lo + target * bm + j as u64)))
            .collect();
        copies.push((target, copy));
    }
    copy_to_blocks(machine, holder, b0, q, m_used, scratch_lo, bm, out);
    for (target, copy) in copies {
        copy_to_blocks(machine, copy, target, q, m_used, scratch_lo, bm, out);
    }
}

/// Z-quadrant broadcast within one aligned block; returns one value per cell
/// indexed by Z-offset.
pub(crate) fn bcast_z_block<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    lo: u64,
    len: u64,
) -> Vec<Tracked<T>> {
    debug_assert_eq!(root.loc(), zorder::coord_of(lo));
    let mut out: Vec<Option<Tracked<T>>> = (0..len).map(|_| None).collect();
    rec_bcast(machine, root, lo, len, lo, &mut out);
    return out.into_iter().map(|o| o.expect("covered")).collect();

    fn rec_bcast<T: Clone>(
        machine: &mut Machine,
        root: Tracked<T>,
        lo: u64,
        len: u64,
        base: u64,
        out: &mut [Option<Tracked<T>>],
    ) {
        if len == 1 {
            out[(lo - base) as usize] = Some(root);
            return;
        }
        let q = len / 4;
        let copies: Vec<Tracked<T>> =
            (1..4).map(|i| machine.send(&root, zorder::coord_of(lo + i * q))).collect();
        rec_bcast(machine, root, lo, q, base, out);
        for (i, c) in copies.into_iter().enumerate() {
            rec_bcast(machine, c, lo + (i as u64 + 1) * q, q, base, out);
        }
    }
}

/// Z-quadrant sum-reduce within one aligned block; result lands on the block
/// corner.
pub(crate) fn reduce_z_block(
    machine: &mut Machine,
    items: Vec<Tracked<u64>>,
    lo: u64,
) -> Tracked<u64> {
    let len = items.len() as u64;
    let mut slots: Vec<Option<Tracked<u64>>> = items.into_iter().map(Some).collect();
    return rec_reduce(machine, lo, len, lo, &mut slots);

    fn rec_reduce(
        machine: &mut Machine,
        lo: u64,
        len: u64,
        base: u64,
        slots: &mut [Option<Tracked<u64>>],
    ) -> Tracked<u64> {
        if len == 1 {
            return slots[(lo - base) as usize].take().expect("populated");
        }
        let q = len / 4;
        let mut acc = rec_reduce(machine, lo, q, base, slots);
        for i in 1..4 {
            let part = rec_reduce(machine, lo + i * q, q, base, slots);
            let arrived = machine.send_owned(part, zorder::coord_of(lo));
            let combined = acc.zip_with(&arrived, |a, b| a + b);
            machine.discard(arrived);
            machine.discard(std::mem::replace(&mut acc, combined));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::{attach_uids, detach_uids};
    use collectives::zarray::{place_z, read_values};

    fn run_sort(vals: Vec<i64>) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let n = vals.len() as u64;
        let items = attach_uids(place_z(&mut m, 0, vals));
        let cells = zorder::next_power_of_four(n) * zorder::next_power_of_four(n);
        let sorted = allpairs_sort_to_z(&mut m, items, scratch_for(0, cells), 0);
        (m, read_values(detach_uids(sorted)))
    }

    #[test]
    fn sorts_small_arrays_of_every_size() {
        for n in 1..=20usize {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 11 - 5).collect();
            let mut expect = vals.clone();
            expect.sort();
            let (_, got) = run_sort(vals);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates_stably() {
        let vals = vec![3i64, 1, 3, 1, 3, 1, 2, 2];
        let mut m = Machine::new();
        let items = attach_uids(place_z(&mut m, 0, vals.clone()));
        let sorted = allpairs_sort_to_z(&mut m, items, scratch_for(0, 16 * 16), 0);
        let got: Vec<(i64, u64)> = sorted.iter().map(|t| (t.value().key, t.value().uid)).collect();
        // Stable: equal keys keep input order of uids.
        assert_eq!(got, vec![(1, 1), (1, 3), (1, 5), (2, 6), (2, 7), (3, 0), (3, 2), (3, 4)]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let vals: Vec<i64> = vec![9, -3, 7, 7, 0, 2, 2, 2, 14, 1];
        let mut m = Machine::new();
        let items = attach_uids(place_z(&mut m, 0, vals));
        let ranked = allpairs_rank(&mut m, items, 0);
        let mut ranks: Vec<u64> = ranked.iter().map(|t| t.value().1).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn energy_scales_as_m_to_the_five_halves() {
        // Lemma V.5: O(m^{5/2}) energy. 4x the input → ≈32x the energy.
        let energy = |n: usize| {
            let (m, _) = run_sort((0..n as i64).rev().collect());
            m.energy() as f64
        };
        let growth = energy(256) / energy(64);
        assert!(
            growth > 16.0 && growth < 80.0,
            "expected ≈32x energy growth for 4x m, got {growth:.1}x"
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        for &n in &[16usize, 64, 256] {
            let (m, _) = run_sort((0..n as i64).rev().collect());
            let bound = 10 * (n as f64).log2() as u64 + 10;
            assert!(m.report().depth <= bound, "n = {n}: depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn distance_is_linear_in_m() {
        for &n in &[64usize, 256] {
            let (m, _) = run_sort((0..n as i64).collect());
            assert!(
                m.report().distance <= 12 * n as u64,
                "n = {n}: distance {}",
                m.report().distance
            );
        }
    }

    #[test]
    fn scratch_for_aligns_and_localizes() {
        let s = scratch_for(1234, 1000);
        assert_eq!(s % zorder::next_power_of_four(1000), 0);
        assert!(s <= 1234);
        assert_eq!(scratch_for(0, 5), 0);
    }
}
