//! Shearsort — the mesh-connected baseline of the paper's §II.B.
//!
//! Mesh algorithms proceed in rounds of neighbour exchanges; a `K`-round
//! mesh algorithm costs `O(Kn)` energy, depth `K` and distance `O(K)` in
//! the Spatial Computer Model. Shearsort sorts a `√n × √n` mesh in
//! `Θ(√n log n)` rounds (alternating snake-order row sorts and column
//! sorts), so it lands at `Θ(n^{3/2} log n)` energy and — crucially —
//! `Θ(√n log n)` **depth**. The optimal mesh algorithms reach `Θ(√n)`
//! rounds [Thompson & Kung]; either way the depth is polynomial, which is
//! exactly what the paper's 2D mergesort improves to poly-logarithmic while
//! keeping `Θ(n^{3/2})` energy. The `fig_mesh` benchmark measures this
//! trade.

use spatial_model::{Machine, SubGrid, Tracked};

use sortnet::network::{Comparator, Network};
use sortnet::run_on_coords;

/// One odd-even transposition step applied to every row simultaneously
/// (`dir[r]` = false for ascending rows, true for descending).
fn row_step<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
    odd: bool,
    snake: bool,
) -> Vec<Tracked<T>> {
    let (h, w) = (grid.h as usize, grid.w as usize);
    let mut net = Network::new(h * w);
    let mut stage = Vec::new();
    for r in 0..h {
        let descending = snake && r % 2 == 1;
        let mut c = usize::from(odd);
        while c + 1 < w {
            let (lo, hi) = (r * w + c, r * w + c + 1);
            if descending {
                stage.push(Comparator::new(hi, lo));
            } else {
                stage.push(Comparator::new(lo, hi));
            }
            c += 2;
        }
    }
    net.push_stage(stage);
    run_on_coords(machine, &net, items)
}

/// One odd-even transposition step applied to every column simultaneously
/// (always top-to-bottom ascending).
fn col_step<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
    odd: bool,
) -> Vec<Tracked<T>> {
    let (h, w) = (grid.h as usize, grid.w as usize);
    let mut net = Network::new(h * w);
    let mut stage = Vec::new();
    for c in 0..w {
        let mut r = usize::from(odd);
        while r + 1 < h {
            stage.push(Comparator::new(r * w + c, (r + 1) * w + c));
            r += 2;
        }
    }
    net.push_stage(stage);
    run_on_coords(machine, &net, items)
}

/// Sorts `items` (row-major on the square `grid`) into **snake order**:
/// even rows ascend left→right, odd rows descend, and rows are globally
/// ordered. Pure mesh algorithm: every message crosses exactly one grid
/// edge.
pub fn shearsort_snake<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    assert!(grid.is_square(), "shearsort runs on square meshes");
    assert_eq!(items.len() as u64, grid.len());
    for (i, it) in items.iter().enumerate() {
        assert_eq!(it.loc(), grid.rm_coord(i as u64), "item {i} off its mesh cell");
    }
    let h = grid.h as usize;
    let w = grid.w as usize;
    let phases = (usize::BITS - (h.max(2) - 1).leading_zeros()) as usize + 1;
    let mut cur = items;
    for _ in 0..phases {
        // Full snake-order row sort: w transposition steps.
        for step in 0..w {
            cur = row_step(machine, grid, cur, step % 2 == 1, true);
        }
        // Full column sort: h transposition steps.
        for step in 0..h {
            cur = col_step(machine, grid, cur, step % 2 == 1);
        }
    }
    // Final row pass leaves each row internally sorted in snake order.
    for step in 0..w {
        cur = row_step(machine, grid, cur, step % 2 == 1, true);
    }
    cur
}

/// Sorts into **row-major** order: shearsort + reversal of the odd rows
/// (a one-message-per-element permutation inside each row).
pub fn shearsort_row_major<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    let snake = shearsort_snake(machine, grid, items);
    let w = grid.w as usize;
    // The row reversal is a bijection on indices, so tagging each element
    // with its destination and sorting by it fills every slot by
    // construction — no placeholder vector, no panic path.
    let mut placed: Vec<(usize, Tracked<T>)> = snake
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let (r, c) = (i / w, i % w);
            let dst_c = if r % 2 == 1 { w - 1 - c } else { c };
            let dst = r * w + dst_c;
            (dst, machine.move_to(t, grid.rm_coord(dst as u64)))
        })
        .collect();
    placed.sort_by_key(|&(dst, _)| dst);
    placed.into_iter().map(|(_, t)| t).collect()
}

/// Snake-order index of row-major position `i` on a width-`w` grid
/// (testing helper: `snake_value_order(i)` gives the row-major cell holding
/// the `i`-th smallest element after [`shearsort_snake`]).
pub fn snake_cell(i: usize, w: usize) -> usize {
    let (r, c) = (i / w, i % w);
    if r % 2 == 1 {
        r * w + (w - 1 - c)
    } else {
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::Coord;

    fn place(m: &mut Machine, grid: SubGrid, vals: Vec<i64>) -> Vec<Tracked<i64>> {
        vals.into_iter().enumerate().map(|(i, v)| m.place(grid.rm_coord(i as u64), v)).collect()
    }

    fn pseudo(n: usize) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 2654435761) % 1009) - 500).collect()
    }

    #[test]
    fn sorts_into_snake_order() {
        for side in [2u64, 4, 8, 16] {
            let n = (side * side) as usize;
            let grid = SubGrid::square(Coord::ORIGIN, side);
            let mut m = Machine::new();
            let items = place(&mut m, grid, pseudo(n));
            let out = shearsort_snake(&mut m, grid, items);
            let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
            let mut expect = pseudo(n);
            expect.sort_unstable();
            for (rank, &v) in expect.iter().enumerate() {
                assert_eq!(got[snake_cell(rank, side as usize)], v, "side {side} rank {rank}");
            }
        }
    }

    #[test]
    fn row_major_variant_matches_std_sort() {
        let side = 8u64;
        let n = 64usize;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut m = Machine::new();
        let items = place(&mut m, grid, pseudo(n));
        let out = shearsort_row_major(&mut m, grid, items);
        let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        let mut expect = pseudo(n);
        expect.sort_unstable();
        assert_eq!(got, expect);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), grid.rm_coord(i as u64));
        }
    }

    #[test]
    fn every_message_is_a_mesh_edge() {
        let side = 8u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut m = Machine::new();
        m.enable_trace(1 << 22);
        let items = place(&mut m, grid, pseudo(64));
        let _ = shearsort_snake(&mut m, grid, items);
        for rec in m.trace().unwrap().records() {
            assert_eq!(rec.len, 1, "mesh algorithms only talk to neighbours");
        }
    }

    #[test]
    fn depth_is_order_sqrt_n_log_n() {
        // The §II.B point: mesh sorting has polynomial depth.
        for side in [8u64, 16, 32] {
            let n = (side * side) as usize;
            let grid = SubGrid::square(Coord::ORIGIN, side);
            let mut m = Machine::new();
            let items = place(&mut m, grid, pseudo(n));
            let _ = shearsort_snake(&mut m, grid, items);
            let rounds = (side as f64) * ((side as f64).log2() + 2.0) * 2.5;
            assert!(
                m.report().depth as f64 <= rounds + side as f64,
                "side {side}: depth {} vs round bound {rounds}",
                m.report().depth
            );
            // And it really is polynomial: at least ~side rounds deep.
            assert!(m.report().depth >= side, "side {side}: depth {}", m.report().depth);
        }
    }

    #[test]
    fn energy_matches_k_rounds_times_n() {
        // O(Kn) energy for a K-round mesh algorithm.
        let side = 16u64;
        let n = side * side;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut m = Machine::new();
        let items = place(&mut m, grid, pseudo(n as usize));
        let _ = shearsort_snake(&mut m, grid, items);
        let k = m.report().depth; // rounds
        assert!(m.energy() <= 2 * k * n, "energy {} vs 2Kn {}", m.energy(), 2 * k * n);
    }

    #[test]
    fn already_sorted_input_stays_sorted() {
        let side = 8u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut m = Machine::new();
        let vals: Vec<i64> = (0..64).collect();
        let items = place(&mut m, grid, vals.clone());
        let out = shearsort_row_major(&mut m, grid, items);
        let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        assert_eq!(got, vals);
    }
}
