//! Rank selection in two sorted arrays (paper §V-C(c), Lemma V.6).
//!
//! Given two sorted Z-segment arrays `A` and `B` and a target rank `k`
//! (1-based), determine how the `k` smallest elements of `A‖B` split between
//! the arrays. The algorithm samples every `⌊√n⌋`-th element, ranks the
//! sample with All-Pairs Sort, uses the `l`-th sample as a pivot to discard
//! all but `O(√n)` candidates per array, and finishes with an All-Pairs Sort
//! of the narrowed windows. Costs: `O(n^{5/4})` energy, `O(log n)` depth,
//! `O(√n)` distance.
//!
//! One deviation from the paper's step 4 (documented in DESIGN.md): the
//! pivot's predecessors are located with a broadcast-compare-reduce over each
//! array instead of a pointer-chasing binary search. This costs `O(n)` energy
//! (within the `O(n^{5/4})` budget) but keeps the distance at `O(√n)`, where
//! `log n` sequential round-trip probes would cost `O(√n log n)`.

use spatial_model::{Machine, Tracked};

use collectives::zseg::{broadcast_z, reduce_z};

use crate::allpairs::{allpairs_rank, scratch_for};

/// Integer square root (floor).
pub(crate) fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u64;
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    while x * x > n {
        x -= 1;
    }
    x
}

/// How the `k` smallest elements of `A‖B` split between the arrays.
///
/// `ca + cb == k`; the `k` smallest elements are exactly
/// `A[0..ca] ∪ B[0..cb]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Split {
    /// Number of the k smallest coming from `A`.
    pub ca: u64,
    /// Number of the k smallest coming from `B`.
    pub cb: u64,
}

/// Computes the rank-`k` splits for several ranks at once — the
/// *multiselection* problem the paper cites (\[53\]) for the merge's three
/// quartile queries. One sample is gathered and all-pairs-ranked once; all
/// pivots ship in a single broadcast; only the `O(√n)`-sized windows are
/// ranked per k. Costs match a single [`rank_split`] up to constants:
/// `O(|ks|·n^{5/4})` energy, `O(log n)` depth, `O(√n)` distance.
pub fn multi_rank_split<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: &[Tracked<P>],
    a_lo: u64,
    b: &[Tracked<P>],
    b_lo: u64,
    ks: &[u64],
) -> Vec<Split> {
    let (na, nb) = (a.len() as u64, b.len() as u64);
    let n = na + nb;
    if ks.is_empty() {
        return Vec::new();
    }
    for &k in ks {
        assert!(k >= 1 && k <= n, "rank {k} out of range 1..={n}");
    }
    if na == 0 {
        return ks.iter().map(|&k| Split { ca: 0, cb: k }).collect();
    }
    if nb == 0 {
        return ks.iter().map(|&k| Split { ca: k, cb: 0 }).collect();
    }

    let stride = isqrt(n).max(1);
    let win = 3 * stride + 4;

    // Which ranks need the sampling phase at all?
    let needs_pivot: Vec<bool> = ks.iter().map(|&k| (k - 1) / stride != 0 && n > win).collect();
    let exclusions: Vec<(u64, u64)> = if needs_pivot.iter().any(|&b| b) {
        // Shared phase: sample once, rank once.
        let mut sample: Vec<Tracked<(P, u8)>> = Vec::new();
        let mut i = 0;
        while i < na {
            sample.push(a[i as usize].duplicate().map(|kd| (kd, 0u8)));
            i += stride;
        }
        let mut i = 0;
        while i < nb {
            sample.push(b[i as usize].duplicate().map(|kd| (kd, 1u8)));
            i += stride;
        }
        let s_len = sample.len() as u64;
        let bm = spatial_model::zorder::next_power_of_four(s_len);
        let scratch = scratch_for(a_lo, bm * bm);
        let ranked = allpairs_rank(machine, sample, scratch);

        // Pick every needed pivot from the one ranked sample and count all
        // predecessors with a single bundled broadcast + reduce.
        let mut pivots: Vec<Option<Tracked<P>>> = Vec::with_capacity(ks.len());
        for (j, &k) in ks.iter().enumerate() {
            if !needs_pivot[j] {
                pivots.push(None);
                continue;
            }
            let l = (k - 1) / stride;
            let idx = (l - 1).min(s_len - 1);
            let pivot = ranked
                .iter()
                .find(|t| t.value().1 == idx)
                .expect("ranks form a permutation")
                .duplicate()
                .map(|(p, _)| p.0);
            pivots.push(Some(pivot));
        }
        for t in ranked {
            machine.discard(t);
        }
        let counts = count_leq_multi(machine, a, a_lo, b, b_lo, &pivots);
        for p in pivots.into_iter().flatten() {
            machine.discard(p);
        }
        counts
    } else {
        vec![(0, 0); ks.len()]
    };

    // Per-rank window phase (windows are disjoint across the quartiles).
    ks.iter()
        .enumerate()
        .map(|(j, &k)| {
            let (ea, eb) = if needs_pivot[j] { exclusions[j] } else { (0, 0) };
            window_phase(machine, a, a_lo, b, k, ea, eb, win)
        })
        .collect()
}

/// Computes the rank-`k` split of two sorted arrays (`k` 1-based,
/// `1 ≤ k ≤ |A| + |B|`).
///
/// `a` must be sorted ascending on the Z-segment `[a_lo, a_lo + |A|)` and
/// `b` on `[b_lo, b_lo + |B|)`. Elements across both arrays must be pairwise
/// distinct (wrap in [`crate::keyed::Keyed`]).
pub fn rank_split<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: &[Tracked<P>],
    a_lo: u64,
    b: &[Tracked<P>],
    b_lo: u64,
    k: u64,
) -> Split {
    let (na, nb) = (a.len() as u64, b.len() as u64);
    let n = na + nb;
    assert!(k >= 1 && k <= n, "rank {k} out of range 1..={n}");
    if na == 0 {
        return Split { ca: 0, cb: k };
    }
    if nb == 0 {
        return Split { ca: k, cb: 0 };
    }

    let stride = isqrt(n).max(1);
    // Window length per array; 3·stride + 4 covers the pivot-rank slack
    // (rank(S_l) ∈ [k-1-3·stride, k-1], see the lemma's proof and DESIGN.md).
    let win = 3 * stride + 4;

    // Pivot phase: skipped when k is small enough that the answer lies in
    // the first windows anyway (the paper's Case l = 0).
    let l = (k - 1) / stride;
    let (ea, eb) = if l == 0 || n <= win {
        (0, 0)
    } else {
        // Step 1: gather every stride-th element of each array into a sample.
        let mut sample: Vec<Tracked<(P, u8)>> = Vec::new();
        let mut i = 0;
        while i < na {
            sample.push(a[i as usize].duplicate().map(|kd| (kd, 0u8)));
            i += stride;
        }
        let mut i = 0;
        while i < nb {
            sample.push(b[i as usize].duplicate().map(|kd| (kd, 1u8)));
            i += stride;
        }
        let s_len = sample.len() as u64;

        // Step 2: rank the sample with All-Pairs Sort on a scratch square.
        let bm = spatial_model::zorder::next_power_of_four(s_len);
        let scratch = scratch_for(a_lo, bm * bm);
        let ranked = allpairs_rank(machine, sample, scratch);

        // Step 3+4: pick S_l (the l-th smallest sample, 0-based index l-1;
        // clamped to the sample) and count its `≤`-predecessors per array.
        let idx = (l - 1).min(s_len - 1);
        let pivot = ranked
            .iter()
            .find(|t| t.value().1 == idx)
            .expect("ranks form a permutation")
            .duplicate()
            .map(|(p, _)| p.0);
        for t in ranked {
            machine.discard(t);
        }
        let ea = count_leq(machine, a, a_lo, &pivot);
        let eb = count_leq(machine, b, b_lo, &pivot);
        machine.discard(pivot);
        (ea, eb)
    };

    window_phase(machine, a, a_lo, b, k, ea, eb, win)
}

/// Steps 5+6 of Lemma V.6: all-pairs-rank the two narrowed windows and count
/// how many of the `k - ea - eb` smallest come from `A`.
#[allow(clippy::too_many_arguments)]
fn window_phase<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: &[Tracked<P>],
    a_lo: u64,
    b: &[Tracked<P>],
    k: u64,
    ea: u64,
    eb: u64,
    win: u64,
) -> Split {
    let (na, nb) = (a.len() as u64, b.len() as u64);
    debug_assert!(ea + eb < k, "pivot must rank below k: ea={ea} eb={eb} k={k}");
    let kp = k - ea - eb; // rank within the windows

    let wa_end = na.min(ea + win);
    let wb_end = nb.min(eb + win);
    let mut window: Vec<Tracked<(P, u8)>> = Vec::new();
    for i in ea..wa_end {
        window.push(a[i as usize].duplicate().map(|kd| (kd, 0u8)));
    }
    for i in eb..wb_end {
        window.push(b[i as usize].duplicate().map(|kd| (kd, 1u8)));
    }
    let w_len = window.len() as u64;
    assert!(kp <= w_len, "window too small: kp={kp} w={w_len} (k={k}, ea={ea}, eb={eb})");
    let bm = spatial_model::zorder::next_power_of_four(w_len);
    let scratch = scratch_for(a_lo, bm * bm);
    let ranked = allpairs_rank(machine, window, scratch);

    // Count A-elements among the kp smallest of the window. The indicators
    // sit on block corners spread over the scratch square; compact them onto
    // a Z-segment and reduce.
    let indicators: Vec<Tracked<u64>> = ranked
        .into_iter()
        .map(|t| t.map(|((_kd, src), rank)| u64::from(src == 0 && rank < kp)))
        .collect();
    let compact: Vec<Tracked<u64>> = indicators
        .into_iter()
        .enumerate()
        .map(|(i, t)| machine.move_to(t, spatial_model::zorder::coord_of(scratch + i as u64)))
        .collect();
    let ca_win = reduce_z(machine, compact, scratch, &|x, y| x + y);
    let ca_win_val = *ca_win.value();
    machine.discard(ca_win);

    let ca = ea + ca_win_val;
    Split { ca, cb: k - ca }
}

/// Counts, for every present pivot, the `≤`-predecessors in both arrays with
/// a **single** bundled broadcast and reduce (the pivots travel together as
/// one constant-size message payload).
#[allow(clippy::type_complexity)]
fn count_leq_multi<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: &[Tracked<P>],
    a_lo: u64,
    b: &[Tracked<P>],
    b_lo: u64,
    pivots: &[Option<Tracked<P>>],
) -> Vec<(u64, u64)> {
    // Gather the pivot values (they sit on different block corners of the
    // ranked sample square) at one hub PE and bundle them into a single
    // constant-size message payload.
    let hub = pivots.iter().flatten().next().expect("at least one pivot").loc();
    let mut bundle: Tracked<Vec<Option<P>>> = pivots
        .iter()
        .flatten()
        .next()
        .expect("at least one pivot")
        .with_value(Vec::with_capacity(pivots.len()));
    for p in pivots {
        bundle = match p {
            Some(t) => {
                let moved = if t.loc() == hub { t.duplicate() } else { machine.send(t, hub) };
                let next = bundle.zip_with(&moved, |v, pv| {
                    let mut v = v.clone();
                    v.push(Some(pv.clone()));
                    v
                });
                machine.discard(moved);
                next
            }
            None => bundle.map(|mut v| {
                v.push(None);
                v
            }),
        };
    }
    let mut counts = vec![(0u64, 0u64); pivots.len()];
    for (arr, lo, pick_a) in [(a, a_lo, true), (b, b_lo, false)] {
        let hi = lo + arr.len() as u64;
        let copies = broadcast_z(machine, bundle.duplicate(), lo, hi);
        let indicators: Vec<Tracked<Vec<u64>>> = arr
            .iter()
            .zip(copies)
            .map(|(el, pv)| {
                let ind = el.zip_with(&pv, |e, ps| {
                    ps.iter()
                        .map(|p| u64::from(p.as_ref().is_some_and(|p| e <= p)))
                        .collect::<Vec<u64>>()
                });
                machine.discard(pv);
                ind
            })
            .collect();
        let total = reduce_z(machine, indicators, lo, &|x: &Vec<u64>, y: &Vec<u64>| {
            x.iter().zip(y).map(|(a, b)| a + b).collect()
        });
        for (j, c) in total.value().iter().enumerate() {
            if pick_a {
                counts[j].0 = *c;
            } else {
                counts[j].1 = *c;
            }
        }
        machine.discard(total);
    }
    machine.discard(bundle);
    counts
}

/// Counts the elements of a sorted Z-segment array that are `≤ pivot`,
/// via broadcast + indicator + reduce (energy `O(len)`, depth `O(log len)`,
/// distance `O(√len)`).
fn count_leq<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    arr: &[Tracked<P>],
    lo: u64,
    pivot: &Tracked<P>,
) -> u64 {
    let hi = lo + arr.len() as u64;
    let copies = broadcast_z(machine, pivot.duplicate(), lo, hi);
    let indicators: Vec<Tracked<u64>> = arr
        .iter()
        .zip(copies)
        .map(|(el, pv)| {
            let ind = el.zip_with(&pv, |e, p| u64::from(e <= p));
            machine.discard(pv);
            ind
        })
        .collect();
    let total = reduce_z(machine, indicators, lo, &|x, y| x + y);
    let v = *total.value();
    machine.discard(total);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::Keyed;
    use collectives::zarray::place_z;

    /// Places two sorted keyed arrays on adjacent Z-segments.
    #[allow(clippy::type_complexity)]
    fn setup(
        m: &mut Machine,
        a_vals: &[i64],
        b_vals: &[i64],
        lo: u64,
    ) -> (Vec<Tracked<Keyed<i64>>>, u64, Vec<Tracked<Keyed<i64>>>, u64) {
        let a: Vec<Keyed<i64>> =
            a_vals.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
        let off = a_vals.len() as u64;
        let b: Vec<Keyed<i64>> =
            b_vals.iter().enumerate().map(|(i, &v)| Keyed::new(v, off + i as u64)).collect();
        let a_items = place_z(m, lo, a);
        let b_items = place_z(m, lo + off, b);
        (a_items, lo, b_items, lo + off)
    }

    fn reference_split(a: &[i64], b: &[i64], k: u64) -> Split {
        let mut all: Vec<(i64, u64)> = a.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
        let off = a.len() as u64;
        all.extend(b.iter().enumerate().map(|(i, &v)| (v, off + i as u64)));
        all.sort_unstable();
        let ca = all[..k as usize].iter().filter(|(_, uid)| *uid < off).count() as u64;
        Split { ca, cb: k - ca }
    }

    #[test]
    fn exhaustive_small_arrays_all_ranks() {
        let cases: Vec<(Vec<i64>, Vec<i64>)> = vec![
            (vec![1, 3, 5, 7], vec![2, 4, 6, 8]),
            (vec![1, 2, 3, 4], vec![5, 6, 7, 8]),
            (vec![5, 6, 7, 8], vec![1, 2, 3, 4]),
            (vec![1, 1, 1, 1], vec![1, 1, 1, 1]),
            (vec![3], vec![1, 2, 4, 5, 6, 7, 9]),
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            ((0..16).map(|i| i * 2).collect(), (0..16).map(|i| i * 2 + 1).collect()),
        ];
        for (a, b) in cases {
            let n = (a.len() + b.len()) as u64;
            for k in 1..=n {
                let mut m = Machine::new();
                let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
                let got = rank_split(&mut m, &ai, alo, &bi, blo, k);
                let expect = reference_split(&a, &b, k);
                assert_eq!(got, expect, "a={a:?} b={b:?} k={k}");
                assert_eq!(got.ca + got.cb, k);
            }
        }
    }

    #[test]
    fn larger_arrays_random_ranks() {
        let mk = |seed: i64, n: i64, step: i64| -> Vec<i64> {
            let mut v: Vec<i64> = (0..n).map(|i| (i * step + seed) % 1000).collect();
            v.sort_unstable();
            v
        };
        for (na, nb) in [(128i64, 128i64), (256, 64), (37, 219), (200, 200)] {
            let a = mk(17, na, 13);
            let b = mk(5, nb, 29);
            let n = (na + nb) as u64;
            for k in [1u64, 2, n / 4, n / 2, 3 * n / 4, n - 1, n] {
                let mut m = Machine::new();
                let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
                let got = rank_split(&mut m, &ai, alo, &bi, blo, k);
                assert_eq!(got, reference_split(&a, &b, k), "na={na} nb={nb} k={k}");
            }
        }
    }

    #[test]
    fn every_rank_on_medium_arrays() {
        let a: Vec<i64> = (0..48).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..80).map(|i| i * 2 + 1).collect();
        let n = 128u64;
        for k in 1..=n {
            let mut m = Machine::new();
            let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 256);
            let got = rank_split(&mut m, &ai, alo, &bi, blo, k);
            assert_eq!(got, reference_split(&a, &b, k), "k={k}");
        }
    }

    #[test]
    fn energy_is_subquadratic() {
        // Lemma V.6: O(n^{5/4}) energy. 4x n → ≈ 5.7x energy; allow slack
        // but reject quadratic (16x) growth.
        let energy = |n: i64| {
            let a: Vec<i64> = (0..n).map(|i| i * 2).collect();
            let b: Vec<i64> = (0..n).map(|i| i * 2 + 1).collect();
            let mut m = Machine::new();
            let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
            let _ = rank_split(&mut m, &ai, alo, &bi, blo, n as u64);
            m.energy() as f64
        };
        let growth = energy(2048) / energy(512);
        assert!(growth < 12.0, "expected ≈5.7x growth for 4x n, got {growth:.1}x");
    }

    #[test]
    fn depth_is_logarithmic() {
        let n = 1024i64;
        let a: Vec<i64> = (0..n).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..n).map(|i| i * 3 + 1).collect();
        let mut m = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
        let _ = rank_split(&mut m, &ai, alo, &bi, blo, n as u64);
        let bound = 20 * (2.0 * n as f64).log2() as u64 + 20;
        assert!(m.report().depth <= bound, "depth {} > {bound}", m.report().depth);
    }

    #[test]
    fn multiselect_matches_individual_splits() {
        let a: Vec<i64> = (0..96).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..160).map(|i| i * 2 + 1).collect();
        let n = 256u64;
        let ks = [n / 4, n / 2, 3 * n / 4];
        let mut m = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
        let multi = multi_rank_split(&mut m, &ai, alo, &bi, blo, &ks);
        for (j, &k) in ks.iter().enumerate() {
            assert_eq!(multi[j], reference_split(&a, &b, k), "k={k}");
        }
    }

    #[test]
    fn multiselect_saves_energy_over_separate_calls() {
        let half = 2048i64;
        let a: Vec<i64> = (0..half).map(|i| i * 2).collect();
        let b: Vec<i64> = (0..half).map(|i| i * 2 + 1).collect();
        let n = (2 * half) as u64;
        let ks = [n / 4, n / 2, 3 * n / 4];

        let mut m1 = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m1, &a, &b, 0);
        let multi = multi_rank_split(&mut m1, &ai, alo, &bi, blo, &ks);

        let mut m2 = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m2, &a, &b, 0);
        let single: Vec<Split> =
            ks.iter().map(|&k| rank_split(&mut m2, &ai, alo, &bi, blo, k)).collect();

        assert_eq!(multi, single);
        assert!(
            m1.energy() < m2.energy(),
            "shared sample must be cheaper: {} vs {}",
            m1.energy(),
            m2.energy()
        );
    }

    #[test]
    fn multiselect_handles_mixed_small_and_large_ranks() {
        let a: Vec<i64> = (0..64).map(|i| i * 5).collect();
        let b: Vec<i64> = (0..64).map(|i| i * 5 + 2).collect();
        let ks = [1u64, 2, 64, 127, 128];
        let mut m = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
        let multi = multi_rank_split(&mut m, &ai, alo, &bi, blo, &ks);
        for (j, &k) in ks.iter().enumerate() {
            assert_eq!(multi[j], reference_split(&a, &b, k), "k={k}");
        }
    }

    #[test]
    fn multiselect_empty_ranks_is_empty() {
        let a: Vec<i64> = vec![1, 2];
        let b: Vec<i64> = vec![3, 4];
        let mut m = Machine::new();
        let (ai, alo, bi, blo) = setup(&mut m, &a, &b, 0);
        assert!(multi_rank_split(&mut m, &ai, alo, &bi, blo, &[]).is_empty());
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..2000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }
}
