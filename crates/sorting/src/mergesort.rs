//! 2D Mergesort (paper §V-C, Theorem V.8).
//!
//! Recursively sort the four quadrants of the (Z-segment) array, merge the
//! two top quadrants, merge the two bottom quadrants, and merge the results:
//! `E(n) = O(n^{3/2}) + 4E(n/4)` gives `O(n^{3/2})` energy — optimal by the
//! permutation lower bound (Lemma V.1 / Corollary V.2) — at `O(log³ n)`
//! depth and `O(√n)` distance.
//!
//! [`sort_z`] keeps the array in Z-order; [`sort_row_major`] additionally
//! performs the row-major conversions at the boundaries (the permutation of
//! Fig. 3(d)), preserving all cost bounds.

use spatial_model::{zorder, Machine, SpatialError, SubGrid, Tracked};

use collectives::route::{route, row_major_to_z};

use crate::keyed::{attach_uids, Keyed};
use crate::merge2d::merge_adjacent;

/// Below this size the sort finishes with a constant-cost sorting network.
const BASE: usize = 16;

/// Sorts `items` (element `i` resident at Z-index `lo + i`) ascending along
/// the Z-curve. Stable; `lo` must be aligned to the padded length.
///
/// ```
/// use spatial_model::Machine;
/// use collectives::place_z;
/// use sorting::sort_z_values;
///
/// let mut m = Machine::new();
/// let items = place_z(&mut m, 0, vec![9i64, 1, 8, 2, 7, 3]);
/// assert_eq!(sort_z_values(&mut m, 0, items), vec![1, 2, 3, 7, 8, 9]);
/// ```
///
/// Arbitrary lengths are supported: inputs are padded internally with
/// `+∞` sentinels up to the next power of four (paper §III assumes powers of
/// four w.l.o.g.).
pub fn sort_z<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    if n <= 1 {
        return items;
    }
    let padded = zorder::next_power_of_four(n);
    assert_eq!(lo % padded, 0, "segment must be aligned to its padded length");
    // Wrap keys so all elements are distinct (stability) and pad with +∞.
    let mut keyed: Vec<Tracked<Pad<T>>> =
        attach_uids(items).into_iter().map(|t| t.map(Pad::Val)).collect();
    keyed.extend(
        machine.place_batch((n..padded).map(Pad::Inf).collect(), |i| {
            zorder::coord_of(lo + n + i as u64)
        }),
    );
    let sorted = sort_pow4(machine, lo, keyed);
    // Strip sentinels (they sorted to the tail) and unwrap.
    let mut out = Vec::with_capacity(n as usize);
    for t in sorted {
        match t.value() {
            Pad::Val(_) => out.push(t.map(|p| match p {
                Pad::Val(k) => k.key,
                Pad::Inf(_) => unreachable!(),
            })),
            Pad::Inf(_) => machine.discard(t),
        }
    }
    out
}

/// Fallible [`sort_z`]: runs under the machine's active guard/fault layer
/// and surfaces any violation as a typed [`SpatialError`].
pub fn try_sort_z<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| sort_z(m, lo, items))
}

/// Like [`sort_z`] but returns the sorted plain values (reads the array out
/// of the machine).
pub fn sort_z_values<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
) -> Vec<T> {
    sort_z(machine, lo, items).into_iter().map(Tracked::into_value).collect()
}

/// Sorts an array stored **row-major** on a square subgrid, returning it
/// sorted in row-major order (the paper's input/output convention): convert
/// to Z-order, run [`sort_z`], permute back (Fig. 3(d)).
pub fn sort_row_major<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    grid: SubGrid,
    items: Vec<Tracked<T>>,
) -> Vec<Tracked<T>> {
    assert!(
        grid.is_square() && grid.w.is_power_of_two(),
        "row-major sort needs a power-of-two square"
    );
    assert_eq!(items.len() as u64, grid.len());
    assert!(
        grid.origin.row >= 0 && grid.origin.col >= 0,
        "grid must sit in the Z-indexed quadrant"
    );
    let lo = zorder::index_of(grid.origin);
    assert_eq!(lo % grid.len(), 0, "grid must be an aligned Z-square");
    let z_items = row_major_to_z(machine, items, lo);
    let sorted = sort_z(machine, lo, z_items);
    route(machine, sorted, |i, _| grid.rm_coord(i as u64))
}

/// Padding wrapper: `Inf` sorts after every value; the payload keeps the
/// sentinels distinct so the `Keyed` invariant (total order) holds.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Pad<T> {
    Val(Keyed<T>),
    Inf(u64),
}

fn sort_pow4<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<Pad<T>>>,
) -> Vec<Tracked<Pad<T>>> {
    let n = items.len();
    debug_assert!(zorder::is_power_of_four(n as u64));
    if n <= BASE {
        let net = sortnet::odd_even_transposition(n);
        return sortnet::run_on_coords(machine, &net, items);
    }
    let q = n / 4;
    let mut quadrants: Vec<Vec<Tracked<Pad<T>>>> = Vec::with_capacity(4);
    let mut iter = items.into_iter();
    for i in 0..4 {
        let chunk: Vec<_> = iter.by_ref().take(q).collect();
        quadrants.push(sort_pow4(machine, lo + (i * q) as u64, chunk));
    }
    let bottom = quadrants.pop().expect("4 quadrants");
    let third = quadrants.pop().expect("4 quadrants");
    let second = quadrants.pop().expect("4 quadrants");
    let first = quadrants.pop().expect("4 quadrants");
    // Merge the two top quadrants, the two bottom quadrants, then the halves.
    let top = merge_adjacent(machine, first, second, lo);
    let bot = merge_adjacent(machine, third, bottom, lo + 2 * q as u64);
    merge_adjacent(machine, top, bot, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::zarray::place_z;
    use spatial_model::Coord;

    fn pseudo(n: usize, seed: i64) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 2654435761 + seed) % 1000003) - 500000).collect()
    }

    fn run_sort(vals: Vec<i64>, lo: u64) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let items = place_z(&mut m, lo, vals);
        let out = sort_z(&mut m, lo, items);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), zorder::coord_of(lo + i as u64), "output cell {i}");
        }
        let got = out.into_iter().map(Tracked::into_value).collect();
        (m, got)
    }

    #[test]
    fn sorts_power_of_four_sizes() {
        for &n in &[1usize, 4, 16, 64, 256, 1024] {
            let vals = pseudo(n, 42);
            let mut expect = vals.clone();
            expect.sort_unstable();
            let (_, got) = run_sort(vals, 0);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_awkward_sizes_with_padding() {
        for &n in &[2usize, 3, 5, 17, 100, 333, 777] {
            let vals = pseudo(n, 7);
            let mut expect = vals.clone();
            expect.sort_unstable();
            let lo = 0;
            let (_, got) = run_sort(vals, lo);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let n = 256usize;
        let cases: Vec<Vec<i64>> = vec![
            (0..n as i64).collect(),                // already sorted
            (0..n as i64).rev().collect(),          // reversed
            vec![5; n],                             // constant
            (0..n as i64).map(|i| i % 4).collect(), // few distinct
            (0..n as i64).map(|i| if i % 2 == 0 { i } else { -i }).collect(), // zigzag
        ];
        for vals in cases {
            let mut expect = vals.clone();
            expect.sort_unstable();
            let (_, got) = run_sort(vals, 0);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn sort_is_stable() {
        let mut m = Machine::new();
        // Key = value % 4; attach payload via index to observe stability.
        let vals: Vec<(i64, usize)> = (0..64usize).map(|i| ((i as i64 * 13) % 4, i)).collect();
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct Item(i64, usize);
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0) // compare key only
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let items = place_z(&mut m, 0, vals.iter().map(|&(k, i)| Item(k, i)).collect());
        let out = sort_z(&mut m, 0, items);
        let got: Vec<(i64, usize)> = out.iter().map(|t| (t.value().0, t.value().1)).collect();
        let mut expect = vals;
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        assert_eq!(got, expect.iter().map(|&(k, i)| (k, i)).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_on_offset_segment() {
        let vals = pseudo(64, 3);
        let mut expect = vals.clone();
        expect.sort_unstable();
        let (_, got) = run_sort(vals, 4096);
        assert_eq!(got, expect);
    }

    #[test]
    fn sort_energy_scales_as_n_to_three_halves() {
        // Theorem V.8: Θ(n^{3/2}); 4x n → ≈8x energy.
        let energy = |n: usize| {
            let (m, _) = run_sort(pseudo(n, 1), 0);
            m.energy() as f64
        };
        let growth = energy(4096) / energy(1024);
        assert!(growth > 5.0 && growth < 13.0, "expected ≈8x growth for 4x n, got {growth:.1}x");
    }

    #[test]
    fn sort_depth_is_polylog() {
        let n = 4096usize;
        let (m, _) = run_sort(pseudo(n, 9), 0);
        let log = (n as f64).log2();
        let bound = (10.0 * log * log * log) as u64;
        assert!(m.report().depth <= bound, "depth {} > {bound}", m.report().depth);
    }

    #[test]
    fn sort_distance_is_order_sqrt_n() {
        let n = 4096usize;
        let (m, _) = run_sort(pseudo(n, 11), 0);
        let bound = 100 * (n as f64).sqrt() as u64;
        assert!(m.report().distance <= bound, "distance {} > {bound}", m.report().distance);
    }

    #[test]
    fn row_major_sort_roundtrip() {
        let n = 256usize;
        let side = 16u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let vals = pseudo(n, 23);
        let mut m = Machine::new();
        let items: Vec<_> =
            vals.iter().enumerate().map(|(i, &v)| m.place(grid.rm_coord(i as u64), v)).collect();
        let out = sort_row_major(&mut m, grid, items);
        let mut expect = vals;
        expect.sort_unstable();
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), grid.rm_coord(i as u64), "row-major output cell");
            assert_eq!(*t.value(), expect[i]);
        }
    }
}
