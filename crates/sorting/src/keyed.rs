//! Tie-breaking wrapper: a key plus a unique id.
//!
//! The rank-based routines (all-pairs rank, rank splitting) need a *total*
//! order with distinct elements so that every rank is unique and the k
//! smallest elements form a well-defined set. Wrapping each input in a
//! [`Keyed`] with its original index as `uid` provides that order and makes
//! the overall sort stable.

/// A sort key with a unique tie-breaker. Ordered lexicographically by
/// `(key, uid)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Keyed<T> {
    /// The user's key.
    pub key: T,
    /// Unique id (input position); breaks ties and makes sorting stable.
    pub uid: u64,
}

impl<T> Keyed<T> {
    /// Wraps a key.
    pub fn new(key: T, uid: u64) -> Self {
        Keyed { key, uid }
    }
}

/// Attaches `uid = i` to the `i`-th element (local, free).
pub fn attach_uids<T>(
    items: Vec<spatial_model::Tracked<T>>,
) -> Vec<spatial_model::Tracked<Keyed<T>>> {
    items.into_iter().enumerate().map(|(i, t)| t.map(|key| Keyed::new(key, i as u64))).collect()
}

/// Drops the uids (local, free).
pub fn detach_uids<T>(
    items: Vec<spatial_model::Tracked<Keyed<T>>>,
) -> Vec<spatial_model::Tracked<T>> {
    items.into_iter().map(|t| t.map(|k| k.key)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_key_then_uid() {
        let a = Keyed::new(1, 5);
        let b = Keyed::new(1, 7);
        let c = Keyed::new(2, 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn attach_detach_roundtrip() {
        let mut m = spatial_model::Machine::new();
        let items: Vec<_> =
            (0..4).map(|i| m.place(spatial_model::zorder::coord_of(i), i as i32)).collect();
        let keyed = attach_uids(items);
        assert_eq!(keyed[2].value().uid, 2);
        let back = detach_uids(keyed);
        assert_eq!(*back[3].value(), 3);
        assert_eq!(m.energy(), 0);
    }
}
