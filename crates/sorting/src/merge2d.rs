//! The 2D merge (paper §V-C(b), Lemma V.7, Fig. 3).
//!
//! Merges two sorted arrays occupying *adjacent* Z-segments into one sorted
//! array over the union segment:
//!
//! 1. find the rank-`n/4`, `n/2`, `3n/4` splits of `A‖B` ([`crate::rank2`]);
//! 2. route every element directly to its quarter of the output segment
//!    (A-part first, then B-part, inside each quarter);
//! 3. recurse on the four quarters;
//! 4. tiny quarters finish with an odd-even transposition network.
//!
//! Because each element moves only within the current `m`-element segment
//! (diameter `O(√m)`), the per-node permutation costs `O(m^{3/2})` and the
//! recurrence `E(m) = O(m^{3/2}) + 4E(m/4)` solves to `O(m^{3/2})` — the
//! paper's bound. Depth is `O(log² m)` (a rank split per level), distance
//! `O(√m)`.

use spatial_model::{zorder, Machine, Tracked};

use crate::rank2::multi_rank_split;

/// Below this size a merge finishes with a constant-cost sorting network.
const BASE: usize = 16;

/// Merges sorted `a` (on `[lo, lo+|A|)`) and sorted `b` (on the adjacent
/// segment `[lo+|A|, lo+|A|+|B|)`) into a sorted array on the union segment.
///
/// Any combined length is supported (quarters are uneven by at most one
/// element when it is not divisible by four). Elements must be pairwise
/// distinct ([`crate::keyed::Keyed`] guarantees this).
pub fn merge_adjacent<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: Vec<Tracked<P>>,
    b: Vec<Tracked<P>>,
    lo: u64,
) -> Vec<Tracked<P>> {
    let n = a.len() + b.len();
    if n == 0 {
        return Vec::new();
    }
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    if n <= BASE {
        return base_merge(machine, a, b, lo);
    }
    // Quarter boundaries ⌊i·n/4⌋ — uneven by at most one element when n is
    // not divisible by 4, which leaves the recurrence unchanged.
    let ks: [u64; 5] = [0, n as u64 / 4, n as u64 / 2, 3 * n as u64 / 4, n as u64];
    let b_lo = lo + a.len() as u64;

    // Step 1: the three quartile splits (each pair (ca, cb) says how many of
    // A's and B's leading elements belong to the first k = ks[i] outputs).
    // Solved as one multiselection: the sample is gathered and ranked once
    // and the pivots ship in a single bundled broadcast (the paper cites
    // this as the multiselection problem [53]).
    let mut ca = [0u64; 5];
    let mut cb = [0u64; 5];
    let splits = multi_rank_split(machine, &a, lo, &b, b_lo, &ks[1..4]);
    for (i, s) in splits.into_iter().enumerate() {
        ca[i + 1] = s.ca;
        cb[i + 1] = s.cb;
    }
    ca[4] = a.len() as u64;
    cb[4] = b.len() as u64;
    for i in 0..4 {
        assert!(ca[i] <= ca[i + 1] && cb[i] <= cb[i + 1], "splits must be monotone");
    }

    // Step 2: route each element straight to its quarter (A-part first).
    // The whole permutation is one batch of moves; `which` remembers each
    // element's quarter (0..4 for A-parts, 4..8 for B-parts).
    let (na, nb) = (a.len(), b.len());
    let mut moves: Vec<(Tracked<P>, spatial_model::Coord)> = Vec::with_capacity(n);
    let mut which: Vec<usize> = Vec::with_capacity(n);
    for (j, el) in a.into_iter().enumerate() {
        let j = j as u64;
        let i = (0..4).find(|&i| j < ca[i + 1]).expect("within bounds");
        let dst = lo + ks[i] + (j - ca[i]);
        moves.push((el, zorder::coord_of(dst)));
        which.push(i);
    }
    for (j, el) in b.into_iter().enumerate() {
        let j = j as u64;
        let i = (0..4).find(|&i| j < cb[i + 1]).expect("within bounds");
        let a_part = ca[i + 1] - ca[i];
        let dst = lo + ks[i] + a_part + (j - cb[i]);
        moves.push((el, zorder::coord_of(dst)));
        which.push(4 + i);
    }
    let mut quarter_a: [Vec<Tracked<P>>; 4] = Default::default();
    let mut quarter_b: [Vec<Tracked<P>>; 4] = Default::default();
    for (q, el) in which.into_iter().zip(machine.send_batch(moves)) {
        if q < 4 {
            quarter_a[q].push(el);
        } else {
            quarter_b[q - 4].push(el);
        }
    }
    debug_assert_eq!(quarter_a.iter().map(Vec::len).sum::<usize>(), na);
    debug_assert_eq!(quarter_b.iter().map(Vec::len).sum::<usize>(), nb);

    // Step 3: recurse; concatenating the sorted quarters sorts the segment.
    let mut out = Vec::with_capacity(n);
    for (i, (qa, qb)) in quarter_a.into_iter().zip(quarter_b).enumerate() {
        out.extend(merge_adjacent(machine, qa, qb, lo + ks[i]));
    }
    out
}

/// Constant-size base case: odd-even transposition over the segment cells.
fn base_merge<P: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    a: Vec<Tracked<P>>,
    b: Vec<Tracked<P>>,
    lo: u64,
) -> Vec<Tracked<P>> {
    let items: Vec<Tracked<P>> = a.into_iter().chain(b).collect();
    // The inputs already occupy [lo, lo+n) contiguously (A then B).
    for (i, it) in items.iter().enumerate() {
        debug_assert_eq!(it.loc(), zorder::coord_of(lo + i as u64));
    }
    let net = sortnet::odd_even_transposition(items.len());
    sortnet::run_on_coords(machine, &net, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::Keyed;
    use collectives::zarray::place_z;

    fn keyed(vals: &[i64], uid0: u64) -> Vec<Keyed<i64>> {
        vals.iter().enumerate().map(|(i, &v)| Keyed::new(v, uid0 + i as u64)).collect()
    }

    fn run_merge(a: Vec<i64>, b: Vec<i64>, lo: u64) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let ka = keyed(&a, 0);
        let kb = keyed(&b, a.len() as u64);
        let ia = place_z(&mut m, lo, ka);
        let ib = place_z(&mut m, lo + a.len() as u64, kb);
        let out = merge_adjacent(&mut m, ia, ib, lo);
        // Output must be sorted AND sit on consecutive Z-cells.
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), zorder::coord_of(lo + i as u64), "output cell {i}");
        }
        let vals: Vec<i64> = out.iter().map(|t| t.value().key).collect();
        (m, vals)
    }

    fn sorted_union(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut v: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_equal_halves() {
        for side in [8i64, 32, 128, 512] {
            let a: Vec<i64> = (0..side).map(|i| i * 2).collect();
            let b: Vec<i64> = (0..side).map(|i| i * 2 + 1).collect();
            let expect = sorted_union(&a, &b);
            let (_, got) = run_merge(a, b, 0);
            assert_eq!(got, expect, "side {side}");
        }
    }

    #[test]
    fn merges_disjoint_ranges() {
        let a: Vec<i64> = (0..64).collect();
        let b: Vec<i64> = (64..128).collect();
        let expect = sorted_union(&a, &b);
        let (_, got) = run_merge(a.clone(), b.clone(), 0);
        assert_eq!(got, expect);
        let (_, got) = run_merge(b, a, 0);
        assert_eq!(got, expect);
    }

    #[test]
    fn merges_with_duplicates() {
        let a = vec![1i64; 32];
        let b = vec![1i64; 32];
        let (_, got) = run_merge(a, b, 0);
        assert_eq!(got, vec![1i64; 64]);
    }

    #[test]
    fn merges_interleaved_patterns() {
        let mut a: Vec<i64> = (0..96).map(|i| (i * 37) % 251).collect();
        let mut b: Vec<i64> = (0..160).map(|i| (i * 91 + 7) % 251).collect();
        a.sort_unstable();
        b.sort_unstable();
        let expect = sorted_union(&a, &b);
        let (_, got) = run_merge(a, b, 0);
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_on_offset_segment() {
        let a: Vec<i64> = (0..32).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..32).map(|i| i * 3 + 1).collect();
        let expect = sorted_union(&a, &b);
        let (_, got) = run_merge(a, b, 192);
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_energy_scales_as_n_sqrt_n() {
        // Lemma V.7: O(n^{3/2}): 4x n → ≈8x energy; reject ≥ n² growth.
        let energy = |half: i64| {
            let a: Vec<i64> = (0..half).map(|i| i * 2).collect();
            let b: Vec<i64> = (0..half).map(|i| i * 2 + 1).collect();
            let (m, _) = run_merge(a, b, 0);
            m.energy() as f64
        };
        let growth = energy(2048) / energy(512);
        assert!(growth > 5.0 && growth < 14.0, "expected ≈8x growth for 4x n, got {growth:.1}x");
    }

    #[test]
    fn merge_depth_is_polylog() {
        let half = 2048i64;
        let a: Vec<i64> = (0..half).map(|i| i * 2).collect();
        let b: Vec<i64> = (0..half).map(|i| i * 2 + 1).collect();
        let (m, _) = run_merge(a, b, 0);
        let log = (2.0 * half as f64).log2();
        let bound = (25.0 * log * log) as u64;
        assert!(m.report().depth <= bound, "depth {} > {bound}", m.report().depth);
    }

    #[test]
    fn merge_distance_is_order_sqrt_n() {
        let half = 2048i64;
        let a: Vec<i64> = (0..half).map(|i| i * 2).collect();
        let b: Vec<i64> = (0..half).map(|i| i * 2 + 1).collect();
        let (m, _) = run_merge(a, b, 0);
        let bound = 60 * ((2 * half) as f64).sqrt() as u64;
        assert!(m.report().distance <= bound, "distance {} > {bound}", m.report().distance);
    }
}
