//! Property-based tests for the sorting stack.

use proptest::prelude::*;

use collectives::zarray::place_z;
use sorting::keyed::Keyed;
use sorting::merge2d::merge_adjacent;
use sorting::mergesort::{sort_z, sort_z_values};
use sorting::rank2::{rank_split, Split};
use spatial_model::{zorder, Machine};

fn reference_split(a: &[i64], b: &[i64], k: u64) -> Split {
    let mut all: Vec<(i64, u64)> = a.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
    let off = a.len() as u64;
    all.extend(b.iter().enumerate().map(|(i, &v)| (v, off + i as u64)));
    all.sort_unstable();
    let ca = all[..k as usize].iter().filter(|(_, uid)| *uid < off).count() as u64;
    Split { ca, cb: k - ca }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mergesort_sorts_any_vector(vals in prop::collection::vec(-1000i64..1000, 1..300)) {
        let mut expect = vals.clone();
        expect.sort();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let got = sort_z_values(&mut m, 0, items);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mergesort_output_is_a_permutation_in_place(vals in prop::collection::vec(any::<i16>(), 1..200)) {
        let vals: Vec<i64> = vals.into_iter().map(i64::from).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let out = sort_z(&mut m, 0, items);
        // Multiset equality + output occupies exactly the input Z-cells.
        let mut got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        for (i, t) in out.iter().enumerate() {
            prop_assert_eq!(t.loc(), zorder::coord_of(i as u64));
        }
        let mut expect = vals;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mergesort_is_stable(keys in prop::collection::vec(0i64..5, 1..150)) {
        // Pair each key with its index; a stable sort keeps index order
        // within equal keys. `sort_z` promises stability via uid wrapping.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct Item(i64, usize);
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let items: Vec<Item> = keys.iter().enumerate().map(|(i, &k)| Item(k, i)).collect();
        let mut expect = items.clone();
        expect.sort_by_key(|it| it.0); // std stable sort
        let mut m = Machine::new();
        let placed = place_z(&mut m, 0, items);
        let got = sort_z_values(&mut m, 0, placed);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn merge_equals_sorted_union(
        a in prop::collection::vec(-500i64..500, 0..128),
        b in prop::collection::vec(-500i64..500, 0..128),
    ) {
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();

        let mut m = Machine::new();
        let ka: Vec<Keyed<i64>> = a.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
        let kb: Vec<Keyed<i64>> = b.iter().enumerate().map(|(i, &v)| Keyed::new(v, (a.len() + i) as u64)).collect();
        let ia = place_z(&mut m, 0, ka);
        let ib = place_z(&mut m, a.len() as u64, kb);
        let out = merge_adjacent(&mut m, ia, ib, 0);
        let got: Vec<i64> = out.iter().map(|t| t.value().key).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rank_split_matches_reference(
        a in prop::collection::vec(-100i64..100, 1..64),
        b in prop::collection::vec(-100i64..100, 1..64),
        k_frac in 0.0f64..1.0,
    ) {
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        let n = (a.len() + b.len()) as u64;
        let k = ((n as f64 * k_frac) as u64).clamp(1, n);

        let mut m = Machine::new();
        let ka: Vec<Keyed<i64>> = a.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
        let kb: Vec<Keyed<i64>> = b.iter().enumerate().map(|(i, &v)| Keyed::new(v, (a.len() + i) as u64)).collect();
        let ia = place_z(&mut m, 0, ka);
        let ib = place_z(&mut m, a.len() as u64, kb);
        let got = rank_split(&mut m, &ia, 0, &ib, a.len() as u64, k);
        prop_assert_eq!(got, reference_split(&a, &b, k));
    }

    #[test]
    fn sorting_idempotent(vals in prop::collection::vec(-1000i64..1000, 1..150)) {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let once = sort_z(&mut m, 0, items);
        let once_vals: Vec<i64> = once.iter().map(|t| *t.value()).collect();
        let twice = sort_z_values(&mut m, 0, once);
        prop_assert_eq!(twice, once_vals);
    }
}
