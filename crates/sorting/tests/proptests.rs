//! Property-based tests for the sorting stack, on the in-tree harness
//! (`spatial_core::check`).

use spatial_core::check::{check, check_vec, Config, Gen};
use spatial_core::prop_assert_eq;

use collectives::zarray::place_z;
use sorting::keyed::Keyed;
use sorting::merge2d::merge_adjacent;
use sorting::mergesort::{sort_z, sort_z_values};
use sorting::rank2::{rank_split, Split};
use spatial_model::{zorder, Machine};

fn reference_split(a: &[i64], b: &[i64], k: u64) -> Split {
    let mut all: Vec<(i64, u64)> = a.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
    let off = a.len() as u64;
    all.extend(b.iter().enumerate().map(|(i, &v)| (v, off + i as u64)));
    all.sort_unstable();
    let ca = all[..k as usize].iter().filter(|(_, uid)| *uid < off).count() as u64;
    Split { ca, cb: k - ca }
}

#[test]
fn mergesort_sorts_any_vector() {
    // Runs through the shrinking entry point: a failure here reports the
    // smallest still-failing vector along with its seed.
    check_vec(
        "mergesort_sorts_any_vector",
        |g: &mut Gen| g.vec_i64(1..300, -1000..=1000),
        |vals| {
            let mut expect = vals.to_vec();
            expect.sort();
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.to_vec());
            let got = sort_z_values(&mut m, 0, items);
            prop_assert_eq!(got, expect);
            Ok(())
        },
    );
}

#[test]
fn mergesort_output_is_a_permutation_in_place() {
    check("mergesort_output_is_a_permutation_in_place", |g: &mut Gen| {
        let n = g.size(1..200);
        let vals: Vec<i64> = g.vec(n, |g| i64::from(g.int(i16::MIN..=i16::MAX)));
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let out = sort_z(&mut m, 0, items);
        // Multiset equality + output occupies exactly the input Z-cells.
        let mut got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
        for (i, t) in out.iter().enumerate() {
            prop_assert_eq!(t.loc(), zorder::coord_of(i as u64));
        }
        let mut expect = vals;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn mergesort_is_stable() {
    check("mergesort_is_stable", |g: &mut Gen| {
        // Pair each key with its index; a stable sort keeps index order
        // within equal keys. `sort_z` promises stability via uid wrapping.
        let keys = g.vec_i64(1..150, 0..=4);
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct Item(i64, usize);
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let items: Vec<Item> = keys.iter().enumerate().map(|(i, &k)| Item(k, i)).collect();
        let mut expect = items.clone();
        expect.sort_by_key(|it| it.0); // std stable sort
        let mut m = Machine::new();
        let placed = place_z(&mut m, 0, items);
        let got = sort_z_values(&mut m, 0, placed);
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

fn merge_matches_reference(a: &[i64], b: &[i64]) -> Result<(), String> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
    expect.sort_unstable();

    let mut m = Machine::new();
    let ka: Vec<Keyed<i64>> = a.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
    let kb: Vec<Keyed<i64>> =
        b.iter().enumerate().map(|(i, &v)| Keyed::new(v, (a.len() + i) as u64)).collect();
    let ia = place_z(&mut m, 0, ka);
    let ib = place_z(&mut m, a.len() as u64, kb);
    let out = merge_adjacent(&mut m, ia, ib, 0);
    let got: Vec<i64> = out.iter().map(|t| t.value().key).collect();
    prop_assert_eq!(got, expect);
    Ok(())
}

#[test]
fn merge_equals_sorted_union() {
    check("merge_equals_sorted_union", |g: &mut Gen| {
        let a = g.vec_i64(0..128, -500..=500);
        let b = g.vec_i64(0..128, -500..=500);
        merge_matches_reference(&a, &b)
    });
}

fn rank_split_case(a: &[i64], b: &[i64], k: u64) -> Result<(), String> {
    let mut m = Machine::new();
    let ka: Vec<Keyed<i64>> = a.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
    let kb: Vec<Keyed<i64>> =
        b.iter().enumerate().map(|(i, &v)| Keyed::new(v, (a.len() + i) as u64)).collect();
    let ia = place_z(&mut m, 0, ka);
    let ib = place_z(&mut m, a.len() as u64, kb);
    let got = rank_split(&mut m, &ia, 0, &ib, a.len() as u64, k);
    prop_assert_eq!(got, reference_split(a, b, k));
    Ok(())
}

#[test]
fn rank_split_matches_reference() {
    check("rank_split_matches_reference", |g: &mut Gen| {
        let mut a = g.vec_i64(1..64, -100..=100);
        let mut b = g.vec_i64(1..64, -100..=100);
        a.sort_unstable();
        b.sort_unstable();
        let n = (a.len() + b.len()) as u64;
        let k = ((n as f64 * g.f64_unit()) as u64).clamp(1, n);
        rank_split_case(&a, &b, k)
    });
}

// Ported `proptest` regression: the shrunken counterexample recorded in the
// old `proptests.proptest-regressions` file (duplicate-heavy prefixes in
// both arrays). Pinned across several ranks so the harness change cannot
// silently lose it.
#[test]
fn rank_split_regression_duplicate_prefixes() {
    let mut a: Vec<i64> = vec![
        0, 0, 0, 0, -42, 85, 466, -242, -449, -447, -274, 120, -139, -100, -123, 335, 349, -440,
        -80, -442, -283, -120, -233, -386, 385, 305, 45, -124, -370, -284, -107, 105, -116, 163,
        -486, -150, 35, 51, 440, 206, 283, -188, -148, -72, 429, -337, 168, -243, 309, 467, 203,
        -200, -383, 473, 477, -424, 493, 59, 350, -450, -356, 227, -138, -188, -244, 283, -12,
        -357, 279, 379, -333, 377, 415, -370, -369, 302, -34, 336,
    ];
    let mut b: Vec<i64> = vec![
        226, 361, -351, -430, -316, -264, -477, -356, -417, -361, 120, -343, 161, 127, 23, 314,
        370, 77, 154, -256, -21, -88, -219, 435, 95, -51, 190, 131, -404, -150, 413, -175, 283,
        249, 213, -284, -356, 340, 110, -289, -195, -414, -32, 2, 265, 491, -384, 395, -428, 1,
        374, -372, -234, 471, -325, -377, -47, -73, -245, 255, 400, -70, 270, 144, 33, -104, -155,
        -287, -253, -275, 472, -445, 177, 423, 207, 99, 436, 75, 190, -169, 49, 139, -311, -476,
        18, -61, 245, -12, -52, 133, 64, 381, -38, 208, -160, 477, 419, -163, -318, -451, -370, 62,
        361, 190, 496, -42, -81, -369, -168, 283, -217, 291, -490, -344, -59, -75, 454, 284,
    ];
    a.sort_unstable();
    b.sort_unstable();
    let n = (a.len() + b.len()) as u64;
    for k in [1, 2, n / 4, n / 2, n - 1, n] {
        rank_split_case(&a, &b, k).unwrap_or_else(|e| panic!("k={k}: {e}"));
    }
}

#[test]
fn sorting_idempotent() {
    // Expensive double-sort: run at half the configured case count.
    let cfg = Config::scaled(1, 2);
    spatial_core::check::check_cfg(&cfg, "sorting_idempotent", |g: &mut Gen| {
        let vals = g.vec_i64(1..150, -1000..=1000);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let once = sort_z(&mut m, 0, items);
        let once_vals: Vec<i64> = once.iter().map(|t| *t.value()).collect();
        let twice = sort_z_values(&mut m, 0, once);
        prop_assert_eq!(twice, once_vals);
        Ok(())
    });
}
