//! # PRAM simulation on the Spatial Computer Model (paper §VII)
//!
//! Simulating PRAM algorithms gives quick spatial upper bounds: place the
//! PRAM processors on a `√p × √p` subgrid and the `m` shared-memory cells on
//! a `√m × √m` subgrid next to it, then emulate each synchronous step with
//! messages.
//!
//! * [`erew`] — Exclusive-Read Exclusive-Write simulation (Lemma VII.1):
//!   `O(p(√p + √m))` energy and `O(1)` depth per step; exclusivity is
//!   checked at runtime and violations panic.
//! * [`crcw`] — Concurrent-Read Concurrent-Write (arbitrary-winner)
//!   simulation (Lemma VII.2): conflicts are resolved by sorting access
//!   tuples with the energy-optimal 2D mergesort and broadcasting fetched
//!   values with a segmented scan, for `O(log³ p)` depth per step.
//! * [`programs`] — sample PRAM programs (tree sum, concurrent-read
//!   broadcast, CRCW maximum, and the §VIII SpMV upper-bound program) used
//!   by tests, benches and the SpMV baseline.

pub mod crcw;
pub mod erew;
pub mod programs;

pub use crcw::simulate_crcw;
pub use erew::simulate_erew;

/// A machine word of simulated shared memory.
pub type Word = i64;

/// A PRAM program: `steps()` synchronous rounds, each split into a read
/// phase, a local compute phase, and a write phase (at most one read and one
/// write per processor per round, as in §VII's sub-steps).
pub trait PramProgram {
    /// Per-processor local state (the PRAM's O(1) registers).
    type State: Clone;

    /// Number of PRAM processors `p`.
    fn processors(&self) -> usize;
    /// Number of shared-memory cells `m`.
    fn memory_cells(&self) -> usize;
    /// Number of synchronous steps `T_p`.
    fn steps(&self) -> usize;
    /// Initial contents of the shared memory.
    fn initial_memory(&self) -> Vec<Word>;
    /// Initial local state of processor `pid`.
    fn init_state(&self, pid: usize) -> Self::State;
    /// Read phase: the cell processor `pid` reads at step `t`, if any.
    fn read_addr(&self, t: usize, pid: usize, state: &Self::State) -> Option<usize>;
    /// Compute + write phase: update the state given the value read (if
    /// any); optionally write `(cell, value)`.
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut Self::State,
        read: Option<Word>,
    ) -> Option<(usize, Word)>;
}

/// Where the simulated PRAM lives on the grid: processors on the aligned
/// Z-segment starting at `proc_lo`, memory cells at `mem_lo`.
#[derive(Clone, Copy, Debug)]
pub struct PramLayout {
    /// Z-offset of the processor subgrid (aligned to padded `p`).
    pub proc_lo: u64,
    /// Z-offset of the memory subgrid (aligned to padded `m`).
    pub mem_lo: u64,
}

impl PramLayout {
    /// Default layout: processors at the origin square, memory on the
    /// adjacent aligned square (Lemma VII.1's "next to it").
    pub fn adjacent(p: usize, m: usize) -> Self {
        let p_pad = spatial_model::zorder::next_power_of_four(p as u64);
        let m_pad = spatial_model::zorder::next_power_of_four(m as u64);
        // First m_pad-aligned offset at or after the processor square.
        let mem_lo = p_pad.div_ceil(m_pad) * m_pad;
        PramLayout { proc_lo: 0, mem_lo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_layout_does_not_overlap() {
        for (p, m) in [(16usize, 16usize), (64, 16), (16, 64), (100, 300), (1, 1)] {
            let l = PramLayout::adjacent(p, m);
            let p_pad = spatial_model::zorder::next_power_of_four(p as u64);
            let m_pad = spatial_model::zorder::next_power_of_four(m as u64);
            assert!(l.mem_lo >= l.proc_lo + p_pad || l.proc_lo >= l.mem_lo + m_pad);
            assert_eq!(l.mem_lo % m_pad, 0, "memory square must be aligned");
        }
    }
}
