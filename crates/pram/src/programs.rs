//! Sample PRAM programs for the simulators.
//!
//! These exercise the simulation machinery end-to-end and serve as the
//! workloads of the Lemma VII.1/VII.2 experiments: an EREW tree sum, an EREW
//! doubling broadcast, a concurrent-read broadcast, and a concurrent-write
//! maximum.

use crate::{PramProgram, Word};

/// EREW binary-tree sum: `n/2` processors reduce `n` values (a power of two)
/// into cell 0 in `2·log₂ n` steps (one read per sub-step).
pub struct TreeSum {
    values: Vec<Word>,
}

impl TreeSum {
    /// Sums `values` (length a power of two).
    pub fn new(values: Vec<Word>) -> Self {
        assert!(values.len().is_power_of_two(), "tree sum needs a power-of-two input");
        TreeSum { values }
    }
}

/// Per-processor state for [`TreeSum`].
#[derive(Clone, Default)]
pub struct TreeSumState {
    acc: Word,
}

impl PramProgram for TreeSum {
    type State = TreeSumState;

    fn processors(&self) -> usize {
        (self.values.len() / 2).max(1)
    }
    fn memory_cells(&self) -> usize {
        self.values.len()
    }
    fn steps(&self) -> usize {
        2 * self.values.len().trailing_zeros() as usize
    }
    fn initial_memory(&self) -> Vec<Word> {
        self.values.clone()
    }
    fn init_state(&self, _pid: usize) -> TreeSumState {
        TreeSumState::default()
    }
    fn read_addr(&self, t: usize, pid: usize, _state: &TreeSumState) -> Option<usize> {
        let (level, phase) = (t / 2, t % 2);
        let stride = 1usize << level;
        let base = pid * (stride * 2);
        if base + stride >= self.values.len() {
            return None; // processor idle at this level
        }
        Some(if phase == 0 { base + stride } else { base })
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut TreeSumState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        let (level, phase) = (t / 2, t % 2);
        let stride = 1usize << level;
        let base = pid * (stride * 2);
        if base + stride >= self.values.len() {
            return None;
        }
        match phase {
            0 => {
                state.acc = read.expect("right child value");
                None
            }
            _ => {
                let left = read.expect("left child value");
                Some((base, left + state.acc))
            }
        }
    }
}

/// EREW doubling broadcast: copies cell 0 into all `n` cells in `log₂ n`
/// steps without ever reading a cell twice in one step.
pub struct CopyTree {
    value: Word,
    n: usize,
}

impl CopyTree {
    /// Broadcasts `value` to `n` cells (a power of two).
    pub fn new(value: Word, n: usize) -> Self {
        let n = n.next_power_of_two();
        CopyTree { value, n }
    }
}

impl PramProgram for CopyTree {
    type State = ();

    fn processors(&self) -> usize {
        self.n / 2
    }
    fn memory_cells(&self) -> usize {
        self.n
    }
    fn steps(&self) -> usize {
        self.n.trailing_zeros() as usize
    }
    fn initial_memory(&self) -> Vec<Word> {
        let mut v = vec![0; self.n];
        v[0] = self.value;
        v
    }
    fn init_state(&self, _pid: usize) {}
    fn read_addr(&self, t: usize, pid: usize, _s: &()) -> Option<usize> {
        (pid < (1 << t)).then_some(pid)
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        _s: &mut (),
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        if pid < (1 << t) {
            Some((pid + (1 << t), read.expect("source cell")))
        } else {
            None
        }
    }
}

/// Concurrent-read broadcast: every processor reads cell 0 in the same step
/// (illegal on EREW; exercises the CRCW read machinery) and writes its copy
/// to cell `pid + 1`.
pub struct Broadcast {
    value: Word,
    p: usize,
}

impl Broadcast {
    /// `p` processors all read the same source cell.
    pub fn new(value: Word, p: usize) -> Self {
        Broadcast { value, p }
    }
}

impl PramProgram for Broadcast {
    type State = ();

    fn processors(&self) -> usize {
        self.p
    }
    fn memory_cells(&self) -> usize {
        self.p + 1
    }
    fn steps(&self) -> usize {
        1
    }
    fn initial_memory(&self) -> Vec<Word> {
        let mut v = vec![0; self.p + 1];
        v[0] = self.value;
        v
    }
    fn init_state(&self, _pid: usize) {}
    fn read_addr(&self, _t: usize, _pid: usize, _s: &()) -> Option<usize> {
        Some(0)
    }
    fn execute(
        &self,
        _t: usize,
        pid: usize,
        _s: &mut (),
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        Some((pid + 1, read.expect("broadcast source")))
    }
}

/// The classic constant-time CRCW maximum with `n²` processors: processor
/// `(i, j)` knocks out `v_i` if it loses to `v_j` (concurrent writes to the
/// flag cells), then the surviving index writes the result (unique thanks to
/// index tie-breaking).
pub struct CrcwMax {
    values: Vec<Word>,
}

/// Per-processor state for [`CrcwMax`].
#[derive(Clone, Default)]
pub struct CrcwMaxState {
    vi: Word,
    loser: bool,
}

impl CrcwMax {
    /// Finds the maximum of `values` (`n²` processors, so keep `n` modest).
    pub fn new(values: Vec<Word>) -> Self {
        assert!(!values.is_empty());
        CrcwMax { values }
    }

    /// The memory cell holding the final maximum.
    pub fn result_cell(&self) -> usize {
        2 * self.values.len()
    }

    fn n(&self) -> usize {
        self.values.len()
    }
}

impl PramProgram for CrcwMax {
    type State = CrcwMaxState;

    fn processors(&self) -> usize {
        self.n() * self.n()
    }
    fn memory_cells(&self) -> usize {
        2 * self.n() + 1 // values, knockout flags, result
    }
    fn steps(&self) -> usize {
        4
    }
    fn initial_memory(&self) -> Vec<Word> {
        let mut v = self.values.clone();
        v.extend(std::iter::repeat_n(0, self.n() + 1));
        v
    }
    fn init_state(&self, _pid: usize) -> CrcwMaxState {
        CrcwMaxState::default()
    }
    fn read_addr(&self, t: usize, pid: usize, _state: &CrcwMaxState) -> Option<usize> {
        let n = self.n();
        let (i, j) = (pid / n, pid % n);
        match t {
            0 => Some(i),                   // v_i (concurrent)
            1 => Some(j),                   // v_j (concurrent)
            2 => (j == 0).then_some(n + i), // my knockout flag
            _ => None,
        }
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut CrcwMaxState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        let n = self.n();
        let (i, j) = (pid / n, pid % n);
        match t {
            0 => {
                state.vi = read.expect("v_i");
                None
            }
            1 => {
                let vj = read.expect("v_j");
                // (v, index) tie-break makes the winner unique.
                let lose = (state.vi, i) < (vj, j);
                lose.then(|| (n + i, 1)) // concurrent writes of the same 1
            }
            2 => {
                if j == 0 {
                    state.loser = read.expect("flag") == 1;
                }
                None
            }
            _ => {
                if j == 0 && !state.loser {
                    Some((2 * n, state.vi)) // the unique survivor
                } else {
                    None
                }
            }
        }
    }
}

/// EREW prefix sums (Ladner–Fischer style up/down sweep over shared
/// memory): after `2·(2 log₂ n − 1)` sub-steps, cell `i` holds
/// `Σ_{j ≤ i} values[j]`.
pub struct PrefixSums {
    n: usize,
    values: Vec<Word>,
}

/// Per-processor state for [`PrefixSums`].
#[derive(Clone, Default)]
pub struct PrefixState {
    acc: Word,
}

impl PrefixSums {
    /// Builds the program (length a power of two).
    pub fn new(values: Vec<Word>) -> Self {
        assert!(values.len().is_power_of_two());
        PrefixSums { n: values.len(), values }
    }

    /// Which (level, phase, kind) a global step index encodes: the up-sweep
    /// has `log n` levels, the down-sweep `log n − 1`, each split into a
    /// read sub-step and a read+write sub-step.
    fn decode_step(&self, t: usize) -> (bool, usize, usize) {
        let levels = self.n.trailing_zeros() as usize;
        let up_steps = 2 * levels;
        if t < up_steps {
            (true, t / 2, t % 2)
        } else {
            let t = t - up_steps;
            (false, levels - 2 - t / 2, t % 2)
        }
    }

    /// The (left, right) cells a processor combines at an up-sweep level.
    fn up_pair(&self, level: usize, pid: usize) -> Option<(usize, usize)> {
        let stride = 1usize << level;
        let right = (pid + 1) * (stride * 2) - 1;
        (right < self.n).then(|| (right - stride, right))
    }

    /// The (left, right) cells at a down-sweep level: right end of the left
    /// sibling feeds the *middle* of the right sibling.
    fn down_pair(&self, level: usize, pid: usize) -> Option<(usize, usize)> {
        let stride = 1usize << level;
        let src = (pid + 1) * (stride * 2) - 1;
        let dst = src + stride;
        (dst < self.n).then_some((src, dst))
    }
}

impl PramProgram for PrefixSums {
    type State = PrefixState;

    fn processors(&self) -> usize {
        (self.n / 2).max(1)
    }
    fn memory_cells(&self) -> usize {
        self.n
    }
    fn steps(&self) -> usize {
        let levels = self.n.trailing_zeros() as usize;
        if levels == 0 {
            0
        } else {
            2 * levels + 2 * (levels - 1)
        }
    }
    fn initial_memory(&self) -> Vec<Word> {
        self.values.clone()
    }
    fn init_state(&self, _pid: usize) -> PrefixState {
        PrefixState::default()
    }
    fn read_addr(&self, t: usize, pid: usize, _state: &PrefixState) -> Option<usize> {
        let (up, level, phase) = self.decode_step(t);
        let pair = if up { self.up_pair(level, pid) } else { self.down_pair(level, pid) };
        pair.map(|(l, r)| if phase == 0 { l } else { r })
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut PrefixState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        let (up, level, phase) = self.decode_step(t);
        let pair = if up { self.up_pair(level, pid) } else { self.down_pair(level, pid) };
        let (_, r) = pair?;
        if phase == 0 {
            state.acc = read.expect("left operand");
            None
        } else {
            Some((r, state.acc + read.expect("right operand")))
        }
    }
}

/// List ranking by pointer jumping — the textbook PRAM algorithm §VII's
/// simulation motivates transferring "without the need for detailed
/// reimplementation".
///
/// The list is given as a `next` array with the tail pointing to itself;
/// after `⌈log₂ n⌉` jumping rounds, memory cell `n + i` holds node `i`'s
/// distance to the tail. The jumps create *concurrent reads* (many nodes
/// point at the tail as the pointers collapse), so this runs on the CRCW
/// simulator only.
pub struct ListRanking {
    next: Vec<usize>,
}

/// Per-processor state for [`ListRanking`].
#[derive(Clone, Default)]
pub struct ListRankState {
    next: usize,
    jumped: usize,
    rank: Word,
}

impl ListRanking {
    /// Builds the program from a `next` array (tail points to itself).
    pub fn new(next: Vec<usize>) -> Self {
        let n = next.len();
        assert!(n > 0);
        for (i, &nx) in next.iter().enumerate() {
            assert!(nx < n, "next[{i}] out of range");
        }
        ListRanking { next }
    }

    fn n(&self) -> usize {
        self.next.len()
    }

    fn rounds(&self) -> usize {
        usize::BITS as usize - (self.n().max(2) - 1).leading_zeros() as usize
    }

    /// Extracts the ranks from the final simulated memory.
    pub fn ranks(&self, memory: &[Word]) -> Vec<Word> {
        memory[self.n()..2 * self.n()].to_vec()
    }

    /// Host reference.
    pub fn reference_ranks(&self) -> Vec<Word> {
        (0..self.n())
            .map(|mut i| {
                let mut d = 0;
                while self.next[i] != i {
                    d += 1;
                    i = self.next[i];
                }
                d
            })
            .collect()
    }
}

impl PramProgram for ListRanking {
    type State = ListRankState;

    fn processors(&self) -> usize {
        self.n()
    }
    fn memory_cells(&self) -> usize {
        2 * self.n()
    }
    fn steps(&self) -> usize {
        1 + 2 * self.rounds()
    }
    fn initial_memory(&self) -> Vec<Word> {
        let mut mem: Vec<Word> = self.next.iter().map(|&nx| nx as Word).collect();
        mem.extend(self.next.iter().enumerate().map(|(i, &nx)| Word::from(nx != i)));
        mem
    }
    fn init_state(&self, _pid: usize) -> ListRankState {
        ListRankState::default()
    }
    fn read_addr(&self, t: usize, pid: usize, state: &ListRankState) -> Option<usize> {
        let n = self.n();
        if t == 0 {
            return Some(pid); // own next pointer
        }
        let phase = (t - 1) % 2;
        if phase == 0 {
            Some(state.next) // next[next] (concurrent as chains collapse)
        } else {
            Some(n + state.next) // rank[next]
        }
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut ListRankState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        let n = self.n();
        if t == 0 {
            state.next = read.expect("own next") as usize;
            state.rank = Word::from(state.next != pid);
            return None;
        }
        let phase = (t - 1) % 2;
        if phase == 0 {
            // Jump sub-step: memory holds next^(2^r); every processor reads
            // its pointer's pointer and writes its own doubled pointer back
            // (reads precede writes within a step, so this is synchronous).
            state.jumped = read.expect("next of next") as usize;
            Some((pid, state.jumped as Word))
        } else {
            // Accumulate sub-step: add the *old* rank of the old successor
            // (rank writes land after all reads), then adopt the jump. The
            // tail's rank is 0, so converged pointers add nothing.
            state.rank += read.expect("rank of next");
            state.next = state.jumped;
            Some((n + pid, state.rank))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_sum_schedule_is_exclusive() {
        // Host-side check that no two processors ever read or write the same
        // cell in the same step (EREW validity).
        let prog = TreeSum::new((0..128).collect());
        for t in 0..prog.steps() {
            let mut seen = std::collections::HashSet::new();
            for pid in 0..prog.processors() {
                if let Some(a) = prog.read_addr(t, pid, &TreeSumState::default()) {
                    assert!(seen.insert(a), "step {t}: cell {a} read twice");
                }
            }
        }
    }

    #[test]
    fn copy_tree_schedule_is_exclusive() {
        let prog = CopyTree::new(1, 64);
        for t in 0..prog.steps() {
            let mut seen = std::collections::HashSet::new();
            for pid in 0..prog.processors() {
                if let Some(a) = prog.read_addr(t, pid, &()) {
                    assert!(seen.insert(a), "step {t}: cell {a} read twice");
                }
            }
        }
    }

    #[test]
    fn crcw_max_host_semantics() {
        // Pure host-side sanity of the knockout logic.
        let vals: Vec<Word> = vec![5, 2, 9, 9, 1];
        let n = vals.len();
        let mut flags = vec![false; n];
        for i in 0..n {
            for j in 0..n {
                if (vals[i], i) < (vals[j], j) {
                    flags[i] = true;
                }
            }
        }
        let winners: Vec<usize> = (0..n).filter(|&i| !flags[i]).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(vals[winners[0]], 9);
    }
}
