//! CRCW PRAM simulation (paper §VII.B, Lemma VII.2).
//!
//! Concurrent reads and writes are resolved with the energy-optimal sorting
//! and scanning primitives:
//!
//! * **Read sub-step** — processors create `(cell, pid)` tuples, the tuples
//!   are 2D-mergesorted by cell, group leaders (first tuple of each cell
//!   group, found by a neighbour comparison) fetch the cell value, a
//!   segmented broadcast copies it across the group, and each tuple routes
//!   its value back to its processor (a permutation — the pids are
//!   distinct — costing no more than the sort that the paper uses here).
//! * **Write sub-step** — `(value, pid, cell)` tuples are sorted by
//!   `(cell, pid)`; each group's first tuple wins (the *arbitrary* CRCW
//!   rule, made deterministic as lowest-pid-wins) and sends its value to the
//!   cell.
//!
//! Depth per simulated step is dominated by the sorts: `O(log³ p)`; energy
//! is `O(p√p + p√m)` per step as in the lemma.

use spatial_model::{zorder, Coord, Machine, Tracked};

use collectives::segmented::{segmented_scan, SegItem};
use sorting::allpairs::scratch_for;
use sorting::mergesort::sort_z;

use crate::{PramLayout, PramProgram, Word};

/// Runs `prog` on the CRCW (arbitrary-write, lowest-pid-wins) simulator;
/// returns the final shared memory.
pub fn simulate_crcw<P: PramProgram>(
    machine: &mut Machine,
    prog: &P,
    layout: PramLayout,
) -> Vec<Word> {
    let p = prog.processors();
    let m = prog.memory_cells();
    let p_pad = zorder::next_power_of_four(p as u64);
    let proc_loc = |pid: usize| -> Coord { zorder::coord_of(layout.proc_lo + pid as u64) };
    let mem_loc = |cell: usize| -> Coord { zorder::coord_of(layout.mem_lo + cell as u64) };
    // Scratch segment for the access-tuple sorts, overlapping the processor
    // square (each PE holds O(1) extra words during a sub-step).
    let sort_lo = scratch_for(layout.proc_lo, p_pad);

    let init = prog.initial_memory();
    assert_eq!(init.len(), m, "initial memory must fill every cell");
    let mut memory: Vec<Tracked<Word>> =
        init.into_iter().enumerate().map(|(c, v)| machine.place(mem_loc(c), v)).collect();
    let mut states: Vec<Tracked<P::State>> =
        (0..p).map(|pid| machine.place(proc_loc(pid), prog.init_state(pid))).collect();

    for t in 0..prog.steps() {
        // ---- Read sub-step -------------------------------------------------
        // Tuple key: (cell, pid); non-readers carry a sentinel cell that
        // sorts last and never elects a leader.
        const NO_READ: u64 = u64::MAX;
        let tuples: Vec<Tracked<(u64, u64)>> = (0..p)
            .map(|pid| {
                let addr = prog.read_addr(t, pid, states[pid].value());
                if let Some(cell) = addr {
                    assert!(cell < m, "read address {cell} out of bounds");
                }
                let key = addr.map_or(NO_READ, |c| c as u64);
                let tup = states[pid].with_value((key, pid as u64));
                machine.send_owned(tup, zorder::coord_of(sort_lo + pid as u64))
            })
            .collect();
        let sorted = sort_z(machine, sort_lo, tuples);

        // Leader detection: compare with the previous tuple's cell.
        let mut leader = vec![false; p];
        for (j, tup) in sorted.iter().enumerate() {
            let (cell, _) = *tup.value();
            if cell == NO_READ {
                continue;
            }
            if j == 0 {
                leader[j] = true;
            } else {
                // The neighbour message that carries the previous cell index.
                let prev = machine.send(&sorted[j - 1], tup.loc());
                let is_leader = tup.zip_with(&prev, |(c, _), (pc, _)| c != pc);
                leader[j] = *is_leader.value();
                machine.discard(prev);
                machine.discard(is_leader);
            }
        }

        // Leaders fetch their cell's value (request + response messages).
        let mut fetched: Vec<Option<Tracked<Word>>> = (0..p).map(|_| None).collect();
        for (j, tup) in sorted.iter().enumerate() {
            if !leader[j] {
                continue;
            }
            let cell = tup.value().0 as usize;
            let request = tup.with_value(cell);
            let request = machine.send_owned(request, mem_loc(cell));
            let response = memory[cell].zip_with(&request, |v, _| *v);
            machine.discard(request);
            fetched[j] = Some(machine.send_owned(response, tup.loc()));
        }

        // Segmented broadcast of the fetched values across equal-cell groups.
        let seg_items: Vec<Tracked<SegItem<Word>>> = sorted
            .iter()
            .enumerate()
            .map(|(j, tup)| match fetched[j].take() {
                Some(v) => v.map(|w| SegItem::new(true, w)),
                None => tup.with_value(SegItem::new(false, 0)),
            })
            .collect();
        let mut seg_items = seg_items;
        for i in p as u64..p_pad {
            seg_items.push(machine.place(zorder::coord_of(sort_lo + i), SegItem::new(true, 0)));
        }
        let values = segmented_scan(machine, sort_lo, seg_items, &|a: &Word, _| *a);

        // Route each value back to its requesting processor (pids are
        // distinct, so this is a permutation).
        let mut reads: Vec<Option<Tracked<Word>>> = (0..p).map(|_| None).collect();
        for (j, tup) in sorted.iter().enumerate() {
            let (cell, pid) = *tup.value();
            let v = values[j].duplicate();
            if cell == NO_READ {
                machine.discard(v);
            } else {
                let paired = v.zip_with(tup, |w, _| *w);
                machine.discard(v);
                reads[pid as usize] = Some(machine.send_owned(paired, proc_loc(pid as usize)));
            }
        }
        for v in values {
            machine.discard(v);
        }
        for tup in sorted {
            machine.discard(tup);
        }

        // ---- Compute + write sub-step --------------------------------------
        const NO_WRITE: u64 = u64::MAX;
        let mut write_tuples: Vec<Tracked<(u64, u64, Word)>> = Vec::with_capacity(p);
        for pid in 0..p {
            let read_val = reads[pid].as_ref().map(|r| *r.value());
            let mut state = states[pid].value().clone();
            let write = prog.execute(t, pid, &mut state, read_val);
            let new_state = match reads[pid].take() {
                None => states[pid].with_value(state),
                Some(r) => {
                    let s = states[pid].zip_with(&r, |_, _| state);
                    machine.discard(r);
                    s
                }
            };
            machine.discard(std::mem::replace(&mut states[pid], new_state));
            let tup = match write {
                Some((cell, value)) => {
                    assert!(cell < m, "write address {cell} out of bounds");
                    states[pid].with_value((cell as u64, pid as u64, value))
                }
                None => states[pid].with_value((NO_WRITE, pid as u64, 0)),
            };
            write_tuples.push(machine.send_owned(tup, zorder::coord_of(sort_lo + pid as u64)));
        }
        let sorted_w = sort_z(machine, sort_lo, write_tuples);
        for (j, tup) in sorted_w.iter().enumerate() {
            let (cell, _, _) = *tup.value();
            if cell == NO_WRITE {
                continue;
            }
            let is_first = if j == 0 {
                true
            } else {
                let prev = machine.send(&sorted_w[j - 1], tup.loc());
                let f = tup.zip_with(&prev, |(c, _, _), (pc, _, _)| c != pc);
                let b = *f.value();
                machine.discard(prev);
                machine.discard(f);
                b
            };
            if is_first {
                let cell = cell as usize;
                let outgoing = tup.with_value(tup.value().2);
                let arrived = machine.send_owned(outgoing, mem_loc(cell));
                machine.discard(std::mem::replace(&mut memory[cell], arrived));
            }
        }
        for tup in sorted_w {
            machine.discard(tup);
        }
    }

    for s in states {
        machine.discard(s);
    }
    memory.into_iter().map(Tracked::into_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Broadcast, CrcwMax, TreeSum};
    use crate::simulate_erew;

    #[test]
    fn erew_programs_run_unchanged_on_crcw() {
        let prog = TreeSum::new((1..=64).collect());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m1 = Machine::new();
        let mem_e = simulate_erew(&mut m1, &prog, layout);
        let mut m2 = Machine::new();
        let mem_c = simulate_crcw(&mut m2, &prog, layout);
        assert_eq!(mem_e, mem_c);
        assert_eq!(mem_c[0], (1..=64).sum::<Word>());
    }

    #[test]
    fn concurrent_read_broadcast() {
        // All p processors read cell 0 in the same step — illegal on EREW,
        // resolved by the CRCW machinery.
        let prog = Broadcast::new(7, 48);
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout);
        assert!(mem[1..].iter().all(|&v| v == 7), "{mem:?}");
    }

    #[test]
    fn concurrent_write_max() {
        let vals: Vec<Word> = vec![3, 99, 7, 42, 15, 8, 99, 1];
        let prog = CrcwMax::new(vals.clone());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout);
        assert_eq!(mem[prog.result_cell()], 99);
    }

    #[test]
    fn list_ranking_by_pointer_jumping() {
        use crate::programs::ListRanking;
        // A linked list 5 -> 2 -> 7 -> 0 -> ... built from a permutation.
        let order = [5usize, 2, 7, 0, 6, 1, 4, 3]; // visit order; last is tail
        let mut next = vec![0usize; 8];
        for w in order.windows(2) {
            next[w[0]] = w[1];
        }
        next[order[7]] = order[7]; // tail self-loop
        let prog = ListRanking::new(next);
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout);
        assert_eq!(prog.ranks(&mem), prog.reference_ranks());
        // The head is 7 hops from the tail.
        assert_eq!(prog.ranks(&mem)[5], 7);
    }

    #[test]
    fn list_ranking_on_larger_random_list() {
        use crate::programs::ListRanking;
        // Deterministic pseudo-random visit order over 64 nodes.
        let n = 64usize;
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = 0xC0FFEEu64;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut next = vec![0usize; n];
        for w in order.windows(2) {
            next[w[0]] = w[1];
        }
        next[order[n - 1]] = order[n - 1];
        let prog = ListRanking::new(next);
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout);
        assert_eq!(prog.ranks(&mem), prog.reference_ranks());
    }

    #[test]
    fn crcw_depth_is_polylog_per_step() {
        let prog = Broadcast::new(1, 256);
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m = Machine::new();
        let _ = simulate_crcw(&mut m, &prog, layout);
        let p = prog.processors() as f64;
        let log = p.log2();
        let bound = (prog.steps() as f64 * 20.0 * log * log * log) as u64;
        assert!(m.report().depth <= bound, "depth {} > {bound}", m.report().depth);
    }

    #[test]
    fn crcw_costs_more_energy_than_erew_on_the_same_program() {
        // The sorting overhead is the price of concurrency resolution.
        let prog = TreeSum::new((0..64).collect());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m1 = Machine::new();
        let _ = simulate_erew(&mut m1, &prog, layout);
        let mut m2 = Machine::new();
        let _ = simulate_crcw(&mut m2, &prog, layout);
        assert!(m2.energy() > m1.energy());
    }
}
