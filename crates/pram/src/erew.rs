//! EREW PRAM simulation (paper §VII.A, Lemma VII.1).
//!
//! Each simulated step: every reading processor sends a request message to
//! its memory cell, the cell answers with its value, the processor computes,
//! and writing processors send the new value to their cell. Every step costs
//! `O(1)` depth, `O(√p + √m)` distance and `O(p(√p + √m))` energy.
//!
//! Exclusivity is enforced: two processors touching the same cell in the
//! same phase of the same step panic — that program is not a valid EREW
//! program.

use std::collections::HashMap;

use spatial_model::{zorder, Coord, Machine, Tracked};

use crate::{PramLayout, PramProgram, Word};

/// Runs `prog` on the EREW simulator; returns the final shared memory.
///
/// ```
/// use spatial_model::Machine;
/// use pram::programs::TreeSum;
/// use pram::{simulate_erew, PramLayout, PramProgram};
///
/// let prog = TreeSum::new((1..=16).collect());
/// let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
/// let mut m = Machine::new();
/// let memory = simulate_erew(&mut m, &prog, layout);
/// assert_eq!(memory[0], 136); // the tree sum landed in cell 0
/// ```
#[allow(clippy::needless_range_loop)] // pid indexes several parallel arrays
pub fn simulate_erew<P: PramProgram>(
    machine: &mut Machine,
    prog: &P,
    layout: PramLayout,
) -> Vec<Word> {
    let p = prog.processors();
    let m = prog.memory_cells();
    let proc_loc = |pid: usize| -> Coord { zorder::coord_of(layout.proc_lo + pid as u64) };
    let mem_loc = |cell: usize| -> Coord { zorder::coord_of(layout.mem_lo + cell as u64) };

    let init = prog.initial_memory();
    assert_eq!(init.len(), m, "initial memory must fill every cell");
    let mut memory: Vec<Tracked<Word>> =
        init.into_iter().enumerate().map(|(c, v)| machine.place(mem_loc(c), v)).collect();
    let mut states: Vec<Tracked<P::State>> =
        (0..p).map(|pid| machine.place(proc_loc(pid), prog.init_state(pid))).collect();

    for t in 0..prog.steps() {
        // Read phase, in three batched waves: every reading processor's
        // request travels to its cell, the cells answer locally, and every
        // response travels back. Exclusivity makes the per-processor chains
        // independent, so the waves charge exactly what the per-processor
        // loop charges.
        let mut read_cells: HashMap<usize, usize> = HashMap::new();
        let mut readers: Vec<(usize, usize)> = Vec::new(); // (pid, cell)
        for pid in 0..p {
            if let Some(cell) = prog.read_addr(t, pid, states[pid].value()) {
                assert!(cell < m, "read address {cell} out of bounds");
                if let Some(other) = read_cells.insert(cell, pid) {
                    panic!("EREW violation: processors {other} and {pid} both read cell {cell} at step {t}");
                }
                readers.push((pid, cell));
            }
        }
        // Requests: processor -> cell (depend on the state).
        let requests = send_all(
            machine,
            readers
                .iter()
                .map(|&(pid, cell)| (states[pid].with_value(cell), mem_loc(cell)))
                .collect(),
        );
        // Responses: cell -> processor (depend on request + cell).
        let mut outgoing: Vec<(Tracked<Word>, Coord)> = Vec::with_capacity(readers.len());
        for (&(pid, cell), request) in readers.iter().zip(requests) {
            let response = memory[cell].zip_with(&request, |v, _| *v);
            machine.discard(request);
            outgoing.push((response, proc_loc(pid)));
        }
        let responses = send_all(machine, outgoing);
        let mut reads: Vec<Option<Tracked<Word>>> = (0..p).map(|_| None).collect();
        for (&(pid, _), response) in readers.iter().zip(responses) {
            reads[pid] = Some(response);
        }
        // Compute + write phase: states advance locally, then all writes
        // travel in one wave.
        let mut write_cells: HashMap<usize, usize> = HashMap::new();
        let mut writers: Vec<(usize, usize)> = Vec::new(); // (pid, cell)
        let mut write_vals: Vec<Word> = Vec::new();
        for pid in 0..p {
            let read_val = reads[pid].as_ref().map(|r| *r.value());
            let mut state = states[pid].value().clone();
            let write = prog.execute(t, pid, &mut state, read_val);
            // New state depends on the old state and the value read.
            let new_state = match reads[pid].take() {
                None => states[pid].with_value(state),
                Some(r) => {
                    let s = states[pid].zip_with(&r, |_, _| state);
                    machine.discard(r);
                    s
                }
            };
            machine.discard(std::mem::replace(&mut states[pid], new_state));
            if let Some((cell, value)) = write {
                assert!(cell < m, "write address {cell} out of bounds");
                if let Some(other) = write_cells.insert(cell, pid) {
                    panic!("EREW violation: processors {other} and {pid} both write cell {cell} at step {t}");
                }
                writers.push((pid, cell));
                write_vals.push(value);
            }
        }
        let arrived = send_all(
            machine,
            writers
                .iter()
                .zip(write_vals)
                .map(|(&(pid, cell), value)| (states[pid].with_value(value), mem_loc(cell)))
                .collect(),
        );
        for (&(_, cell), new_val) in writers.iter().zip(arrived) {
            machine.discard(std::mem::replace(&mut memory[cell], new_val));
        }
    }

    for s in states {
        machine.discard(s);
    }
    memory.into_iter().map(Tracked::into_value).collect()
}

/// Moves every item to its destination. Batched when no item is already at
/// its destination; otherwise falls back to per-item [`Machine::send_owned`],
/// which (unlike the batch API) charges a zero-distance message for a
/// self-send — so the cost never depends on which path ran.
fn send_all<T: Send>(machine: &mut Machine, sends: Vec<(Tracked<T>, Coord)>) -> Vec<Tracked<T>> {
    if sends.iter().any(|(t, dst)| t.loc() == *dst) {
        sends.into_iter().map(|(t, dst)| machine.send_owned(t, dst)).collect()
    } else {
        machine.send_batch(sends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{CopyTree, TreeSum};

    #[test]
    fn tree_sum_computes_total() {
        let vals: Vec<Word> = (1..=64).collect();
        let prog = TreeSum::new(vals.clone());
        let mut m = Machine::new();
        let mem = simulate_erew(
            &mut m,
            &prog,
            PramLayout::adjacent(prog.processors(), prog.memory_cells()),
        );
        assert_eq!(mem[0], vals.iter().sum::<Word>());
    }

    #[test]
    fn tree_sum_depth_is_linear_in_steps() {
        // Lemma VII.1: O(T_p) depth — each step adds O(1) to the chain.
        let prog = TreeSum::new((0..256).collect());
        let mut m = Machine::new();
        let _ = simulate_erew(
            &mut m,
            &prog,
            PramLayout::adjacent(prog.processors(), prog.memory_cells()),
        );
        let t = prog.steps() as u64;
        assert!(m.report().depth <= 4 * t + 4, "depth {} for {t} steps", m.report().depth);
    }

    #[test]
    fn energy_matches_p_sqrt_p_per_step() {
        // p = m: energy O(p·√p·T_p).
        let energy = |n: Word| {
            let prog = TreeSum::new((0..n).collect());
            let mut m = Machine::new();
            let _ = simulate_erew(
                &mut m,
                &prog,
                PramLayout::adjacent(prog.processors(), prog.memory_cells()),
            );
            (m.energy() as f64, prog.steps() as f64, prog.processors() as f64)
        };
        let (e, t, p) = energy(1024);
        let bound = 8.0 * p.sqrt() * p * t;
        assert!(e <= bound, "energy {e} > {bound}");
    }

    #[test]
    fn prefix_sums_program_computes_inclusive_prefix() {
        use crate::programs::PrefixSums;
        for n in [2usize, 4, 8, 64, 256] {
            let vals: Vec<Word> = (0..n as Word).map(|i| (i * 13) % 7 - 3).collect();
            let prog = PrefixSums::new(vals.clone());
            let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
            let mut m = Machine::new();
            let mem = simulate_erew(&mut m, &prog, layout);
            let mut expect = vals;
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            assert_eq!(mem, expect, "n = {n}");
        }
    }

    #[test]
    fn prefix_sums_simulation_is_costlier_than_native_scan() {
        // §VII's message: PRAM simulation gives quick upper bounds, but the
        // native spatial scan wins (Θ(n) vs Ω(n^{3/2}) energy).
        use crate::programs::PrefixSums;
        let n = 1024usize;
        let vals: Vec<Word> = vec![1; n];
        let prog = PrefixSums::new(vals.clone());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let mut m_pram = Machine::new();
        let _ = simulate_erew(&mut m_pram, &prog, layout);

        let mut m_native = Machine::new();
        let items = collectives::zarray::place_z(&mut m_native, 0, vals);
        let _ = collectives::scan(&mut m_native, 0, items, &|a, b| a + b);
        assert!(
            m_pram.energy() > 10 * m_native.energy(),
            "simulated {} vs native {}",
            m_pram.energy(),
            m_native.energy()
        );
    }

    #[test]
    fn copy_tree_broadcasts_without_concurrent_reads() {
        let prog = CopyTree::new(42, 32);
        let mut m = Machine::new();
        let mem = simulate_erew(
            &mut m,
            &prog,
            PramLayout::adjacent(prog.processors(), prog.memory_cells()),
        );
        assert!(mem.iter().all(|&v| v == 42), "{mem:?}");
    }

    struct BadRead;
    impl PramProgram for BadRead {
        type State = ();
        fn processors(&self) -> usize {
            2
        }
        fn memory_cells(&self) -> usize {
            2
        }
        fn steps(&self) -> usize {
            1
        }
        fn initial_memory(&self) -> Vec<Word> {
            vec![0, 0]
        }
        fn init_state(&self, _: usize) {}
        fn read_addr(&self, _: usize, _: usize, _: &()) -> Option<usize> {
            Some(0) // both processors read cell 0
        }
        fn execute(
            &self,
            _: usize,
            _: usize,
            _: &mut (),
            _: Option<Word>,
        ) -> Option<(usize, Word)> {
            None
        }
    }

    #[test]
    #[should_panic(expected = "EREW violation")]
    fn concurrent_read_panics() {
        let mut m = Machine::new();
        let _ = simulate_erew(&mut m, &BadRead, PramLayout::adjacent(2, 2));
    }
}
