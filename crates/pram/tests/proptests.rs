//! Property-based tests for the PRAM simulators, on the in-tree harness
//! (`spatial_core::check`).

use spatial_core::check::{check, Config, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use pram::programs::{Broadcast, CrcwMax, ListRanking, PrefixSums, TreeSum};
use pram::{simulate_crcw, simulate_erew, PramLayout, PramProgram, Word};
use spatial_model::Machine;

fn layout_for<P: PramProgram>(prog: &P) -> PramLayout {
    PramLayout::adjacent(prog.processors(), prog.memory_cells())
}

#[test]
fn tree_sum_equals_host_sum() {
    check("tree_sum_equals_host_sum", |g: &mut Gen| {
        let n = 1usize << g.size(1..8); // 2..=128, power of two
        let vals = g.vec_i64(n..n + 1, -1000..=1000);
        let prog = TreeSum::new(vals.clone());
        let mut m = Machine::new();
        let mem = simulate_erew(&mut m, &prog, layout_for(&prog));
        prop_assert_eq!(mem[0], vals.iter().sum::<Word>());
        Ok(())
    });
}

#[test]
fn prefix_sums_equal_host_scan() {
    check("prefix_sums_equal_host_scan", |g: &mut Gen| {
        let n = 1usize << g.size(1..8);
        let vals = g.vec_i64(n..n + 1, -500..=500);
        let prog = PrefixSums::new(vals.clone());
        let mut m = Machine::new();
        let mem = simulate_erew(&mut m, &prog, layout_for(&prog));
        let mut expect = vals;
        for i in 1..n {
            expect[i] += expect[i - 1];
        }
        prop_assert_eq!(mem, expect);
        Ok(())
    });
}

#[test]
fn crcw_max_equals_host_max() {
    // CRCW arbitrary-winner writes still produce the unique maximum.
    let cfg = Config::scaled(1, 2);
    spatial_core::check::check_cfg(&cfg, "crcw_max_equals_host_max", |g: &mut Gen| {
        let vals = g.vec_i64(1..48, -1000..=1000);
        let prog = CrcwMax::new(vals.clone());
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout_for(&prog));
        prop_assert_eq!(mem[prog.result_cell()], *vals.iter().max().unwrap());
        Ok(())
    });
}

#[test]
fn crcw_broadcast_reaches_every_processor() {
    let cfg = Config::scaled(1, 2);
    spatial_core::check::check_cfg(
        &cfg,
        "crcw_broadcast_reaches_every_processor",
        |g: &mut Gen| {
            let p = g.size(1..48);
            let value = g.int(-10_000i64..=10_000);
            let prog = Broadcast::new(value, p);
            let mut m = Machine::new();
            let mem = simulate_crcw(&mut m, &prog, layout_for(&prog));
            for pid in 0..p {
                prop_assert_eq!(mem[pid + 1], value, "processor {pid}");
            }
            Ok(())
        },
    );
}

#[test]
fn list_ranking_matches_reference() {
    // Pointer-jumping on a random linked list (random permutation cycle cut
    // into a path) must agree with the sequential walk. The jumps create
    // concurrent reads, so this runs on the CRCW simulator (and is the
    // costliest program here — keep the case count and sizes small).
    let cfg = Config::scaled(1, 8);
    spatial_core::check::check_cfg(&cfg, "list_ranking_matches_reference", |g: &mut Gen| {
        let n = 1usize << g.size(1..5);
        // Random path over n nodes: shuffle the visit order, then link it.
        let mut order: Vec<usize> = (0..n).collect();
        g.rng().shuffle(&mut order);
        let mut next = vec![0usize; n];
        for w in order.windows(2) {
            next[w[0]] = w[1];
        }
        let last = *order.last().unwrap();
        next[last] = last; // terminator points at itself
        let prog = ListRanking::new(next);
        let mut m = Machine::new();
        let mem = simulate_crcw(&mut m, &prog, layout_for(&prog));
        prop_assert_eq!(prog.ranks(&mem), prog.reference_ranks());
        Ok(())
    });
}

#[test]
fn erew_step_costs_scale_with_processor_count() {
    // Lemma VII.1: O(p(√p + √m)) energy and O(1) depth per step, so a full
    // run stays within c·p·(√p + √m)·T and c·T depth for a fixed constant.
    check("erew_step_costs_scale_with_processor_count", |g: &mut Gen| {
        let n = 1usize << g.size(2..8);
        let vals = g.vec_i64(n..n + 1, 0..=9);
        let prog = TreeSum::new(vals);
        let mut m = Machine::new();
        let _ = simulate_erew(&mut m, &prog, layout_for(&prog));
        let (p, mm, t) =
            (prog.processors() as f64, prog.memory_cells() as f64, prog.steps() as f64);
        let report = m.report();
        prop_assert!(
            (report.energy as f64) <= 8.0 * p * (p.sqrt() + mm.sqrt()) * t,
            "energy {} at p={p} m={mm} t={t}",
            report.energy
        );
        prop_assert!(report.depth <= 4 * t as u64 + 4, "depth {}", report.depth);
        Ok(())
    });
}
