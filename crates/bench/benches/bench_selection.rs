//! Criterion: simulator throughput of rank selection (Table I row 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::pseudo;
use spatial_core::collectives::zarray::place_z;
use spatial_core::model::Machine;
use spatial_core::selection::select_rank_values;
use spatial_core::sorting::sort_z;

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[4096usize, 16384, 65536] {
        let vals = pseudo(n, 3);
        g.bench_with_input(BenchmarkId::new("select-median", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let (v, _) = select_rank_values(&mut m, 0, vals.clone(), n as u64 / 2, 7);
                std::hint::black_box((m.energy(), v))
            })
        });
    }
    // The sort-based alternative at the smallest size, for the separation.
    let n = 4096usize;
    let vals = pseudo(n, 3);
    g.bench_with_input(BenchmarkId::new("sort-then-index", n), &n, |b, _| {
        b.iter(|| {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let out = sort_z(&mut m, 0, items);
            std::hint::black_box((m.energy(), out.len()))
        })
    });
    g.finish();

    // Rank position ablation.
    let mut g = c.benchmark_group("selection-rank");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let n = 16384usize;
    let vals = pseudo(n, 4);
    for (label, k) in [("min", 1u64), ("p25", n as u64 / 4), ("median", n as u64 / 2), ("max", n as u64)] {
        g.bench_with_input(BenchmarkId::new("select", label), &k, |b, &k| {
            b.iter(|| {
                let mut m = Machine::new();
                let (v, _) = select_rank_values(&mut m, 0, vals.clone(), k, 11);
                std::hint::black_box(v)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
