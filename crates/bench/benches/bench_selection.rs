//! Simulator throughput of rank selection (Table I row 3), on the in-tree
//! timing harness (`bench::timing`).

use bench::pseudo;
use bench::timing::Group;
use spatial_core::collectives::zarray::place_z;
use spatial_core::model::Machine;
use spatial_core::selection::select_rank_values;
use spatial_core::sorting::sort_z;

fn main() {
    let mut g = Group::new("selection").samples(10);
    for &n in &[4096usize, 16384, 65536] {
        let vals = pseudo(n, 3);
        g.bench(&format!("select-median/{n}"), || {
            let mut m = Machine::new();
            let (v, _) = select_rank_values(&mut m, 0, vals.clone(), n as u64 / 2, 7);
            (m.energy(), v)
        });
    }
    // The sort-based alternative at the smallest size, for the separation.
    let n = 4096usize;
    let vals = pseudo(n, 3);
    g.bench(&format!("sort-then-index/{n}"), || {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let out = sort_z(&mut m, 0, items);
        (m.energy(), out.len())
    });
    g.finish();

    // Rank position ablation.
    let mut g = Group::new("selection-rank").samples(10);
    let n = 16384usize;
    let vals = pseudo(n, 4);
    for (label, k) in
        [("min", 1u64), ("p25", n as u64 / 4), ("median", n as u64 / 2), ("max", n as u64)]
    {
        g.bench(&format!("select/{label}"), || {
            let mut m = Machine::new();
            let (v, _) = select_rank_values(&mut m, 0, vals.clone(), k, 11);
            v
        });
    }
    g.finish();
}
