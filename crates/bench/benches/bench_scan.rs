//! Simulator throughput of the scan primitives (Table I row 1), on the
//! in-tree timing harness (`bench::timing`).

use bench::pseudo;
use bench::timing::Group;
use spatial_core::collectives::naive::naive_scan;
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::collectives::{scan, segmented_scan, SegItem};
use spatial_core::model::{Coord, Machine, SubGrid};

fn main() {
    let mut g = Group::new("scan").samples(10);
    for &n in &[1024usize, 4096, 16384] {
        let vals = pseudo(n, 1);
        g.bench(&format!("zorder/{n}"), || {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let out = scan(&mut m, 0, items, &|a, b| a + b);
            (m.energy(), out.len())
        });
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        g.bench(&format!("naive/{n}"), || {
            let mut m = Machine::new();
            let items = place_row_major(&mut m, grid, vals.clone());
            let out = naive_scan(&mut m, items, grid, &|a, b| a + b);
            (m.energy(), out.len())
        });
        let seg: Vec<SegItem<i64>> =
            vals.iter().enumerate().map(|(i, &v)| SegItem::new(i % 17 == 0, v)).collect();
        g.bench(&format!("segmented/{n}"), || {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, seg.clone());
            let out = segmented_scan(&mut m, 0, items, &|a, b| a + b);
            (m.energy(), out.len())
        });
    }
    g.finish();
}
