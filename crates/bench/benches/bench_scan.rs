//! Criterion: simulator throughput of the scan primitives (Table I row 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::pseudo;
use spatial_core::collectives::naive::naive_scan;
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::collectives::{scan, segmented_scan, SegItem};
use spatial_core::model::{Coord, Machine, SubGrid};

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[1024usize, 4096, 16384] {
        let vals = pseudo(n, 1);
        g.bench_with_input(BenchmarkId::new("zorder", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_z(&mut m, 0, vals.clone());
                let out = scan(&mut m, 0, items, &|a, b| a + b);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            let side = (n as f64).sqrt() as u64;
            let grid = SubGrid::square(Coord::ORIGIN, side);
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_row_major(&mut m, grid, vals.clone());
                let out = naive_scan(&mut m, items, grid, &|a, b| a + b);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
        g.bench_with_input(BenchmarkId::new("segmented", n), &n, |b, _| {
            let seg: Vec<SegItem<i64>> = vals.iter().enumerate().map(|(i, &v)| SegItem::new(i % 17 == 0, v)).collect();
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_z(&mut m, 0, seg.clone());
                let out = segmented_scan(&mut m, 0, items, &|a, b| a + b);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
