//! Criterion: simulator throughput of SpMV (Table I row 4 / §VIII).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spatial_core::model::Machine;
use spatial_core::spmv::pram_baseline::spmv_pram_baseline;
use spatial_core::spmv::spmv;

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[128usize, 256, 512] {
        let a = workloads::random_uniform(n, 4, 3);
        let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
        g.bench_with_input(BenchmarkId::new("direct", a.nnz()), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let out = spmv(&mut m, &a, &x);
                std::hint::black_box(out.y.len())
            })
        });
    }
    // PRAM baseline at one size (it is much slower).
    let n = 128usize;
    let a = workloads::random_uniform(n, 4, 3);
    let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
    g.bench_with_input(BenchmarkId::new("pram-baseline", a.nnz()), &n, |b, _| {
        b.iter(|| {
            let mut m = Machine::new();
            let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
            std::hint::black_box(y.len())
        })
    });
    g.finish();

    // Matrix-family ablation.
    let mut g = c.benchmark_group("spmv-family");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let n = 256usize;
    let fams: Vec<(&str, spatial_core::spmv::Coo<i64>)> = vec![
        ("banded", workloads::banded(n, 2, 1)),
        ("uniform", workloads::random_uniform(n, 4, 2)),
        ("zipf", workloads::zipf_rows(n, 4, 3)),
        ("perm", workloads::permutation_matrix(n, 4)),
    ];
    let x: Vec<i64> = vec![1; n];
    for (label, a) in fams {
        g.bench_with_input(BenchmarkId::new("direct", label), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let out = spmv(&mut m, &a, &x);
                std::hint::black_box(out.y.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
