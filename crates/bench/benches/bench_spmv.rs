//! Simulator throughput of SpMV (Table I row 4 / §VIII), on the in-tree
//! timing harness (`bench::timing`).

use bench::timing::Group;
use spatial_core::model::Machine;
use spatial_core::spmv::pram_baseline::spmv_pram_baseline;
use spatial_core::spmv::spmv;

fn main() {
    let mut g = Group::new("spmv").samples(10);
    for &n in &[128usize, 256, 512] {
        let a = workloads::random_uniform(n, 4, 3);
        let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
        g.bench(&format!("direct/{}", a.nnz()), || {
            let mut m = Machine::new();
            let out = spmv(&mut m, &a, &x);
            out.y.len()
        });
    }
    // PRAM baseline at one size (it is much slower).
    let n = 128usize;
    let a = workloads::random_uniform(n, 4, 3);
    let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
    g.bench(&format!("pram-baseline/{}", a.nnz()), || {
        let mut m = Machine::new();
        let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
        y.len()
    });
    g.finish();

    // Matrix-family ablation.
    let mut g = Group::new("spmv-family").samples(10);
    let n = 256usize;
    let fams: Vec<(&str, spatial_core::spmv::Coo<i64>)> = vec![
        ("banded", workloads::banded(n, 2, 1)),
        ("uniform", workloads::random_uniform(n, 4, 2)),
        ("zipf", workloads::zipf_rows(n, 4, 3)),
        ("perm", workloads::permutation_matrix(n, 4)),
    ];
    let x: Vec<i64> = vec![1; n];
    for (label, a) in fams {
        g.bench(&format!("direct/{label}"), || {
            let mut m = Machine::new();
            let out = spmv(&mut m, &a, &x);
            out.y.len()
        });
    }
    g.finish();
}
