//! Criterion: simulator throughput of the sorting algorithms (Table I row 2
//! and the Fig. 2 comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::pseudo;
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::model::{Coord, Machine, SubGrid};
use spatial_core::sortnet::{bitonic_sort, run_row_major};
use spatial_core::sorting::sort_z;

fn bench_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[256usize, 1024, 4096] {
        let vals = pseudo(n, 2);
        g.bench_with_input(BenchmarkId::new("mergesort2d", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_z(&mut m, 0, vals.clone());
                let out = sort_z(&mut m, 0, items);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
        let net = bitonic_sort(n);
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        g.bench_with_input(BenchmarkId::new("bitonic", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_row_major(&mut m, grid, vals.clone());
                let out = run_row_major(&mut m, &net, grid, items);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
    }
    g.finish();

    // Input-order ablation at a fixed size.
    let mut g = c.benchmark_group("sort-input-order");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let n = 1024usize;
    for kind in workloads::ArrayKind::ALL {
        let vals = kind.generate(n, 5);
        g.bench_with_input(BenchmarkId::new("mergesort2d", kind.label()), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_z(&mut m, 0, vals.clone());
                let out = sort_z(&mut m, 0, items);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
