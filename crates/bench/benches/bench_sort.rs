//! Simulator throughput of the sorting algorithms (Table I row 2 and the
//! Fig. 2 comparison), on the in-tree timing harness (`bench::timing`).

use bench::pseudo;
use bench::timing::Group;
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::model::{Coord, Machine, SubGrid};
use spatial_core::sorting::sort_z;
use spatial_core::sortnet::{bitonic_sort, run_row_major};

fn main() {
    let mut g = Group::new("sort").samples(10);
    for &n in &[256usize, 1024, 4096] {
        let vals = pseudo(n, 2);
        g.bench(&format!("mergesort2d/{n}"), || {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let out = sort_z(&mut m, 0, items);
            (m.energy(), out.len())
        });
        let net = bitonic_sort(n);
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        g.bench(&format!("bitonic/{n}"), || {
            let mut m = Machine::new();
            let items = place_row_major(&mut m, grid, vals.clone());
            let out = run_row_major(&mut m, &net, grid, items);
            (m.energy(), out.len())
        });
    }
    g.finish();

    // Input-order ablation at a fixed size.
    let mut g = Group::new("sort-input-order").samples(10);
    let n = 1024usize;
    for kind in workloads::ArrayKind::ALL {
        let vals = kind.generate(n, 5);
        g.bench(&format!("mergesort2d/{}", kind.label()), || {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let out = sort_z(&mut m, 0, items);
            (m.energy(), out.len())
        });
    }
    g.finish();
}
