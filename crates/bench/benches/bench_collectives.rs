//! Criterion: simulator throughput of the §IV collectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spatial_core::collectives::naive::{naive_broadcast, naive_reduce};
use spatial_core::collectives::zarray::place_row_major;
use spatial_core::collectives::{all_reduce, broadcast, reduce};
use spatial_core::model::{Coord, Machine, SubGrid};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[4096u64, 16384, 65536] {
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        g.bench_with_input(BenchmarkId::new("broadcast-opt", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let root = m.place(grid.origin, 1i64);
                let out = broadcast(&mut m, root, grid);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
        g.bench_with_input(BenchmarkId::new("broadcast-naive", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let root = m.place(grid.origin, 1i64);
                let out = naive_broadcast(&mut m, root, grid);
                std::hint::black_box((m.energy(), out.len()))
            })
        });
        g.bench_with_input(BenchmarkId::new("reduce-opt", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_row_major(&mut m, grid, (0..n as i64).collect());
                let t = reduce(&mut m, items, grid, &|a, b| a + b);
                std::hint::black_box(t.into_value())
            })
        });
        g.bench_with_input(BenchmarkId::new("reduce-naive", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Machine::new();
                let items = place_row_major(&mut m, grid, (0..n as i64).collect());
                let t = naive_reduce(&mut m, items, grid, &|a, b| a + b);
                std::hint::black_box(t.into_value())
            })
        });
    }
    // All-reduce at one size.
    let n = 16384u64;
    let side = (n as f64).sqrt() as u64;
    let grid = SubGrid::square(Coord::ORIGIN, side);
    g.bench_with_input(BenchmarkId::new("all-reduce", n), &n, |b, _| {
        b.iter(|| {
            let mut m = Machine::new();
            let items = place_row_major(&mut m, grid, (0..n as i64).collect());
            let out = all_reduce(&mut m, items, grid, &|a, b| a + b);
            std::hint::black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
