//! Simulator throughput of the §IV collectives, on the in-tree timing
//! harness (`bench::timing`).

use bench::timing::Group;
use spatial_core::collectives::naive::{naive_broadcast, naive_reduce};
use spatial_core::collectives::zarray::place_row_major;
use spatial_core::collectives::{all_reduce, broadcast, reduce};
use spatial_core::model::{Coord, Machine, SubGrid};

fn main() {
    let mut g = Group::new("collectives").samples(10);
    for &n in &[4096u64, 16384, 65536] {
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        g.bench(&format!("broadcast-opt/{n}"), || {
            let mut m = Machine::new();
            let root = m.place(grid.origin, 1i64);
            let out = broadcast(&mut m, root, grid);
            (m.energy(), out.len())
        });
        g.bench(&format!("broadcast-naive/{n}"), || {
            let mut m = Machine::new();
            let root = m.place(grid.origin, 1i64);
            let out = naive_broadcast(&mut m, root, grid);
            (m.energy(), out.len())
        });
        g.bench(&format!("reduce-opt/{n}"), || {
            let mut m = Machine::new();
            let items = place_row_major(&mut m, grid, (0..n as i64).collect());
            let t = reduce(&mut m, items, grid, &|a, b| a + b);
            t.into_value()
        });
        g.bench(&format!("reduce-naive/{n}"), || {
            let mut m = Machine::new();
            let items = place_row_major(&mut m, grid, (0..n as i64).collect());
            let t = naive_reduce(&mut m, items, grid, &|a, b| a + b);
            t.into_value()
        });
    }
    // All-reduce at one size.
    let n = 16384u64;
    let side = (n as f64).sqrt() as u64;
    let grid = SubGrid::square(Coord::ORIGIN, side);
    g.bench(&format!("all-reduce/{n}"), || {
        let mut m = Machine::new();
        let items = place_row_major(&mut m, grid, (0..n as i64).collect());
        let out = all_reduce(&mut m, items, grid, &|a, b| a + b);
        out.len()
    });
    g.finish();
}
