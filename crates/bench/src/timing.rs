//! # timing — a minimal wall-clock benchmark harness
//!
//! Replaces the `criterion` dev-dependency with an in-tree, std-only loop:
//! warmup, N timed samples, median/min/mean statistics, a human-readable
//! table on stdout and machine-readable JSON under
//! `target/spatial-bench/<group>.json`.
//!
//! Knobs (environment variables):
//!
//! * `SPATIAL_BENCH_SAMPLES` — timed samples per benchmark (default 15);
//! * `SPATIAL_BENCH_WARMUP_MS` — minimum warmup time per benchmark
//!   (default 200 ms, at least one run);
//! * `SPATIAL_BENCH_JSON` — output directory (default `target/spatial-bench`).
//!
//! ```no_run
//! let mut g = bench::timing::Group::new("scan");
//! g.bench("zorder/1024", || {
//!     // ... the measured work; its return value is sunk into black_box ...
//!     42
//! });
//! g.finish();
//! ```

use std::time::{Duration, Instant};

/// Timing statistics of one benchmark, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark id, e.g. `"zorder/1024"`.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Median sample time (the headline number).
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
}

impl Stats {
    fn from_samples(id: &str, mut ns: Vec<u128>) -> Self {
        assert!(!ns.is_empty());
        ns.sort_unstable();
        let n = ns.len();
        let median = if n % 2 == 1 { ns[n / 2] } else { (ns[n / 2 - 1] + ns[n / 2]) / 2 };
        Stats {
            id: id.to_string(),
            samples: n,
            median_ns: median,
            min_ns: ns[0],
            max_ns: ns[n - 1],
            mean_ns: ns.iter().sum::<u128>() / n as u128,
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A named group of benchmarks sharing configuration — the analogue of a
/// criterion benchmark group.
pub struct Group {
    name: String,
    samples: usize,
    warmup: Duration,
    results: Vec<Stats>,
}

impl Group {
    /// A group with the environment-configured sample count and warmup.
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            samples: env_u64("SPATIAL_BENCH_SAMPLES", 15).max(1) as usize,
            warmup: Duration::from_millis(env_u64("SPATIAL_BENCH_WARMUP_MS", 200)),
            results: Vec::new(),
        }
    }

    /// Overrides the sample count (env var still wins if set).
    pub fn samples(mut self, n: usize) -> Self {
        if std::env::var("SPATIAL_BENCH_SAMPLES").is_err() {
            self.samples = n.max(1);
        }
        self
    }

    /// Times `f`: warmup until the warmup budget is spent (at least once),
    /// then `samples` timed runs. The closure's return value is passed
    /// through [`std::hint::black_box`] so the work is not optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        // Warmup: run until the budget is exhausted, at least once.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            ns.push(t.elapsed().as_nanos());
        }
        let stats = Stats::from_samples(id, ns);
        println!(
            "{:<40} median {:>12}   (min {}, mean {}, {} samples)",
            format!("{}/{}", self.name, stats.id),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
            stats.samples
        );
        self.results.push(stats);
    }

    /// Serializes the group's results as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"samples\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}{}\n",
                s.id,
                s.samples,
                s.median_ns,
                s.min_ns,
                s.max_ns,
                s.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the summary and writes `<dir>/<group>.json`. Returns the
    /// results for programmatic use.
    pub fn finish(self) -> Vec<Stats> {
        // Cargo runs benches with the package dir as CWD, so resolve the
        // default against the shared workspace target dir, not a nested
        // `crates/bench/target/`.
        let dir = std::env::var("SPATIAL_BENCH_JSON").unwrap_or_else(|_| {
            std::env::var("CARGO_TARGET_DIR").map(|t| format!("{t}/spatial-bench")).unwrap_or_else(
                |_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/spatial-bench").to_string(),
            )
        });
        let path = std::path::Path::new(&dir).join(format!("{}.json", self.name));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, self.to_json()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  -> {}", path.display());
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_is_order_insensitive() {
        let s = Stats::from_samples("x", vec![30, 10, 20]);
        assert_eq!(s.median_ns, 20);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        let even = Stats::from_samples("y", vec![40, 10, 20, 30]);
        assert_eq!(even.median_ns, 25);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn group_runs_and_serializes() {
        std::env::set_var("SPATIAL_BENCH_WARMUP_MS", "0");
        let mut g = Group::new("unit-test-group").samples(3);
        let mut calls = 0u32;
        g.bench("noop", || {
            calls += 1;
            calls
        });
        assert!(calls >= 4, "warmup (≥1) + 3 samples, got {calls}");
        let json = g.to_json();
        assert!(json.contains("\"group\": \"unit-test-group\""), "{json}");
        assert!(json.contains("\"id\": \"noop\""), "{json}");
        assert!(json.contains("median_ns"), "{json}");
        std::env::remove_var("SPATIAL_BENCH_WARMUP_MS");
    }
}
