//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §3 for the index); the binaries share the
//! sweep-and-report machinery here. Run them with, e.g.:
//!
//! ```bash
//! cargo run -p bench --release --bin table1
//! ```

pub mod timing;

use spatial_core::model::{profile_by_name, Cost, CostProfile, Machine};
use spatial_core::report::Sweep;

/// Deterministic pseudo-random array (no RNG state needed for sweeps whose
/// exact values are irrelevant).
pub fn pseudo(n: usize, seed: i64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            ((i as i64).wrapping_mul(2654435761).wrapping_add(seed * 40503)) % 1_000_003 - 500_000
        })
        .collect()
}

/// Runs `f` on a fresh machine and returns the accumulated cost.
pub fn measure(f: impl FnOnce(&mut Machine)) -> Cost {
    let mut m = Machine::new();
    f(&mut m);
    m.report()
}

/// Builds a sweep by measuring `f(n)` for each size.
pub fn sweep(name: &str, sizes: &[u64], mut f: impl FnMut(&mut Machine, u64)) -> Sweep {
    let mut s = Sweep::new(name);
    for &n in sizes {
        let cost = measure(|m| f(m, n));
        s.push(n, cost);
    }
    s
}

/// Prints a sweep's raw rows and its paper-vs-measured verdict lines.
pub fn print_sweep(
    s: &Sweep,
    claims: [(spatial_core::theory::Metric, spatial_core::theory::Shape); 3],
) {
    for row in s.raw_rows() {
        println!("{row}");
    }
    for line in s.report_lines(claims) {
        println!("{line}");
    }
}

/// Powers of four `4^lo ..= 4^hi`.
pub fn pow4_sizes(lo: u32, hi: u32) -> Vec<u64> {
    (lo..=hi).map(|k| 4u64.pow(k)).collect()
}

/// Resolves the experiment-wide cost profile: `--profile <name>` on the
/// binary's command line, else the `SPATIAL_PROFILE` environment variable
/// (the CI matrix leg sets the latter), else `None` — raw counters only,
/// exactly today's output. An unknown name aborts with the typed usage
/// message rather than silently generating figures under the wrong model.
pub fn profile_from_args() -> Option<&'static dyn CostProfile> {
    let mut name = std::env::var("SPATIAL_PROFILE").ok();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--profile" {
            name = args.next();
        }
    }
    match profile_by_name(&name?) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// Prints the profiled charge of every sweep point — one indented line per
/// size, after the raw rows. A `None` profile prints nothing, so callers
/// can pass [`profile_from_args`]'s result straight through and the default
/// figure output stays byte-identical.
pub fn print_profiled(s: &Sweep, profile: Option<&'static dyn CostProfile>) {
    let Some(p) = profile else { return };
    println!("  profiled ({}):", p.name());
    for point in &s.points {
        match p.charge(point.cost) {
            Ok(c) => println!(
                "    n={:>10}  total_pj={}  delay_cycles={}  edp={}",
                point.n, c.total_pj, c.delay_cycles, c.edp
            ),
            Err(e) => println!("    n={:>10}  {e}", point.n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_is_deterministic() {
        assert_eq!(pseudo(16, 3), pseudo(16, 3));
        assert_ne!(pseudo(16, 3), pseudo(16, 4));
    }

    #[test]
    fn pow4_sizes_are_powers() {
        assert_eq!(pow4_sizes(2, 4), vec![16, 64, 256]);
    }
}
