//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §3 for the index); the binaries share the
//! sweep-and-report machinery here. Run them with, e.g.:
//!
//! ```bash
//! cargo run -p bench --release --bin table1
//! ```

pub mod timing;

use spatial_core::model::{Cost, Machine};
use spatial_core::report::Sweep;

/// Deterministic pseudo-random array (no RNG state needed for sweeps whose
/// exact values are irrelevant).
pub fn pseudo(n: usize, seed: i64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            ((i as i64).wrapping_mul(2654435761).wrapping_add(seed * 40503)) % 1_000_003 - 500_000
        })
        .collect()
}

/// Runs `f` on a fresh machine and returns the accumulated cost.
pub fn measure(f: impl FnOnce(&mut Machine)) -> Cost {
    let mut m = Machine::new();
    f(&mut m);
    m.report()
}

/// Builds a sweep by measuring `f(n)` for each size.
pub fn sweep(name: &str, sizes: &[u64], mut f: impl FnMut(&mut Machine, u64)) -> Sweep {
    let mut s = Sweep::new(name);
    for &n in sizes {
        let cost = measure(|m| f(m, n));
        s.push(n, cost);
    }
    s
}

/// Prints a sweep's raw rows and its paper-vs-measured verdict lines.
pub fn print_sweep(
    s: &Sweep,
    claims: [(spatial_core::theory::Metric, spatial_core::theory::Shape); 3],
) {
    for row in s.raw_rows() {
        println!("{row}");
    }
    for line in s.report_lines(claims) {
        println!("{line}");
    }
}

/// Powers of four `4^lo ..= 4^hi`.
pub fn pow4_sizes(lo: u32, hi: u32) -> Vec<u64> {
    (lo..=hi).map(|k| 4u64.pow(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_is_deterministic() {
        assert_eq!(pseudo(16, 3), pseudo(16, 3));
        assert_ne!(pseudo(16, 3), pseudo(16, 4));
    }

    #[test]
    fn pow4_sizes_are_powers() {
        assert_eq!(pow4_sizes(2, 4), vec![16, 64, 256]);
    }
}
