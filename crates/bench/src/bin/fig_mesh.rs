//! **§II.B (mesh-connected networks)** — the depth separation between mesh
//! algorithms and the paper's primitives.
//!
//! "Any algorithm on a mesh network (taking) K rounds … incurs O(Kn) energy
//! with depth K and distance O(K). However, many problems such as sorting
//! cannot be solved in sub-polynomial rounds … We improve on this
//! significantly, reducing the depth to polylogarithmic while maintaining
//! optimal energy and distance."
//!
//! Shearsort is the mesh representative (`Θ(√n log n)` rounds; the optimal
//! mesh algorithms reach `Θ(√n)`); the table shows its polynomial depth
//! against the 2D mergesort's polylog depth at matched `Θ`-optimal-ish
//! energy.

use bench::{measure, pseudo};
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::model::{Coord, SubGrid};
use spatial_core::report::{print_section, Sweep};
use spatial_core::sorting::shearsort::shearsort_row_major;
use spatial_core::sorting::sort_z;
use spatial_core::theory::{shape, Metric};

fn main() {
    println!("Reproduction of the §II.B mesh-vs-spatial depth separation.");

    print_section("shearsort (mesh) vs 2D mergesort (spatial)");
    println!(
        "{:>8} {:>12} {:>12} {:>9} | {:>14} {:>9} {:>9}",
        "n", "mesh depth", "mesh dist", "√n·log n", "merge E/mesh E", "mrg dep", "mrg dist"
    );
    let mut mesh = Sweep::new("shearsort");
    for &side in &[8u64, 16, 32, 64] {
        let n = (side * side) as usize;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let vals = pseudo(n, 3);
        let mut expect = vals.clone();
        expect.sort_unstable();

        let cm = measure(|m| {
            let items: Vec<_> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| m.place(grid.rm_coord(i as u64), v))
                .collect();
            let out = shearsort_row_major(m, grid, items);
            let got: Vec<i64> = out.iter().map(|t| *t.value()).collect();
            assert_eq!(got, expect);
        });
        let cs = measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let _ = sort_z(m, 0, items);
        });
        mesh.push(n as u64, cm);
        let bound = side as f64 * (side as f64).log2();
        println!(
            "{:>8} {:>12} {:>12} {:>9.0} | {:>14.1} {:>9} {:>9}",
            n,
            cm.depth,
            cm.distance,
            bound,
            cs.energy as f64 / cm.energy as f64,
            cs.depth,
            cs.distance
        );
    }
    println!("(mesh depth ≈ distance ≈ rounds — polynomial; mergesort depth stays polylog)");

    print_section("mesh scaling fits (K-round model: energy O(Kn), depth K, distance O(K))");
    for line in mesh.report_lines([
        (Metric::Energy, shape(1.5, 1)), // Θ(n^{3/2} log n) = K·n with K = √n·log n
        (Metric::Depth, shape(0.5, 1)),  // K rounds
        (Metric::Distance, shape(0.5, 1)), // O(K)
    ]) {
        println!("{line}");
    }
    bench::print_profiled(&mesh, bench::profile_from_args());

    print_section("depth-vs-energy frontier at n = 4096 (all sorters)");
    let n = 4096usize;
    let side = 64u64;
    let grid = SubGrid::square(Coord::ORIGIN, side);
    let vals = pseudo(n, 9);
    let rows: Vec<(&str, spatial_core::model::Cost)> = vec![
        (
            "shearsort (mesh)",
            measure(|m| {
                let items: Vec<_> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| m.place(grid.rm_coord(i as u64), v))
                    .collect();
                let _ = shearsort_row_major(m, grid, items);
            }),
        ),
        (
            "bitonic network",
            measure(|m| {
                let net = spatial_core::sortnet::bitonic_sort(n);
                let items = place_row_major(m, grid, vals.clone());
                let _ = spatial_core::sortnet::run_row_major(m, &net, grid, items);
            }),
        ),
        (
            "2D mergesort",
            measure(|m| {
                let items = place_z(m, 0, vals.clone());
                let _ = sort_z(m, 0, items);
            }),
        ),
        (
            "all-pairs",
            measure(|m| {
                use spatial_core::sorting::allpairs::{allpairs_sort_to_z, scratch_for};
                use spatial_core::sorting::keyed::attach_uids;
                let items = attach_uids(place_z(m, 0, vals.clone()));
                let bm = spatial_core::model::zorder::next_power_of_four(n as u64);
                let _ = allpairs_sort_to_z(m, items, scratch_for(0, bm * bm), 0);
            }),
        ),
    ];
    println!("{:>20} {:>16} {:>9} {:>10}", "algorithm", "energy", "depth", "distance");
    for (name, c) in rows {
        println!("{:>20} {:>16} {:>9} {:>10}", name, c.energy, c.depth, c.distance);
    }
    println!("(the frontier the paper maps: mesh = cheap energy / deep; networks = log²");
    println!(" depth / log-factor energy; mergesort = optimal-energy class / log³ depth;");
    println!(" all-pairs = minimal depth / quadratic-plus energy)");
}
