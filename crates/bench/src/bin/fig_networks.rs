//! **Ablation** — sorting networks compared: bitonic vs Batcher's odd-even
//! mergesort vs odd-even transposition, all mapped row-major on the grid.
//!
//! All `O(log² n)`-depth networks share the Lemma V.4 fate (a `Θ(log n)`
//! energy factor over the 2D mergesort) because their recursions become
//! one-dimensional; the transposition network shows the other classic trade
//! (unit-distance hops but `Θ(n)` depth, i.e. a mesh algorithm in the sense
//! of §II.B). The ablation quantifies the constants between them.

use bench::{measure, pseudo};
use spatial_core::collectives::zarray::place_row_major;
use spatial_core::model::{Coord, SubGrid};
use spatial_core::report::print_section;
use spatial_core::sortnet::{
    bitonic_sort, odd_even_mergesort, odd_even_transposition, run_row_major, Network,
};

fn run(net: &Network, n: usize, side: u64) -> spatial_core::model::Cost {
    let grid = SubGrid::square(Coord::ORIGIN, side);
    let vals = pseudo(n, 7);
    measure(|m| {
        let items = place_row_major(m, grid, vals.clone());
        let out = run_row_major(m, net, grid, items);
        assert!(out.windows(2).all(|w| w[0].value() <= w[1].value()));
    })
}

fn main() {
    println!("Sorting-network ablation on square grids (row-major wire mapping).");

    print_section("costs per network");
    println!(
        "{:>8} {:>14} {:>12} {:>9} | {:>14} {:>12} {:>9} | {:>14} {:>9}",
        "n",
        "bitonic E",
        "comparators",
        "depth",
        "odd-even E",
        "comparators",
        "depth",
        "transpose E",
        "depth"
    );
    for &n in &[64usize, 256, 1024, 4096] {
        let side = (n as f64).sqrt() as u64;
        let bit = bitonic_sort(n);
        let oem = odd_even_mergesort(n);
        let oet = odd_even_transposition(n);
        let cb = run(&bit, n, side);
        let co = run(&oem, n, side);
        let ct = run(&oet, n, side);
        println!(
            "{:>8} {:>14} {:>12} {:>9} | {:>14} {:>12} {:>9} | {:>14} {:>9}",
            n,
            cb.energy,
            bit.size(),
            cb.depth,
            co.energy,
            oem.size(),
            co.depth,
            ct.energy,
            ct.depth
        );
    }
    println!("\nreadings:");
    println!("  * odd-even mergesort uses fewer comparators than bitonic yet slightly");
    println!("    MORE energy — the paper's §V.B point exactly: 1D-network energy is set");
    println!("    by comparator geometry, not comparator count;");
    println!("  * the transposition network is energy-frugal per stage (unit hops,");
    println!("    Θ(n^1.5) energy total) but pays Θ(n) depth — the Thompson/Kung mesh");
    println!("    regime the paper's §II.B contrasts against (Θ(√n) depth after 2D mapping");
    println!("    of rows, here Θ(n) because the 1D network serializes).");
}
