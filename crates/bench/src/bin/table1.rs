//! **Table I** — the paper's summary of Spatial Computer Model bounds.
//!
//! For each row (Parallel Scan §IV, Sorting §V, Rank Selection §VI,
//! SpMV §VIII) this binary sweeps the input size, measures the exact model
//! costs, fits the polynomial exponents and checks the polylog depth claims:
//!
//! | Problem        | Energy     | Depth     | Distance |
//! |----------------|-----------:|----------:|---------:|
//! | Parallel Scan  | Θ(n)       | O(log n)  | Θ(√n)    |
//! | Sorting        | Θ(n^{3/2}) | O(log³ n) | Θ(√n)    |
//! | Rank Selection | Θ(n)       | O(log² n) | Θ(√n)    |
//! | SpMV           | Θ(m^{3/2}) | O(log³ n) | Θ(√m)    |

use bench::{pow4_sizes, print_profiled, print_sweep, profile_from_args, pseudo};
use runner::sweep_supervised;
use spatial_core::collectives::{place_z, scan};
use spatial_core::report::print_section;
use spatial_core::selection::select_rank_values;
use spatial_core::sorting::sort_z;
use spatial_core::spmv::spmv;
use spatial_core::theory::{self, Metric};

fn main() {
    // Each sweep point runs on its own independent machine, so the sizes
    // fan out across the supervised worker pool: identical measured costs,
    // a fraction of the wall time, and a panicking measurement is contained
    // and named instead of killing the whole table.
    let jobs = runner::default_workers();
    let profile = profile_from_args();
    println!("Reproduction of Table I: fitted scaling exponents vs paper bounds.");
    println!("(energy/distance: log-log fit; depth: metric / log^k n ratios must stay bounded)");
    println!("(sweeps run on {jobs} supervised workers; override with SPATIAL_JOBS)");
    if let Some(p) = profile {
        println!("(profiled totals under the {:?} cost profile)", p.name());
    }

    print_section("Table I row 1: Parallel Scan (Lemma IV.3)");
    let s = sweep_supervised("scan", jobs, &pow4_sizes(4, 9), |m, n| {
        let items = place_z(m, 0, pseudo(n as usize, 1));
        let _ = scan(m, 0, items, &|a, b| a + b);
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::scan_bound(Metric::Energy)),
            (Metric::Depth, theory::scan_bound(Metric::Depth)),
            (Metric::Distance, theory::scan_bound(Metric::Distance)),
        ],
    );
    print_profiled(&s, profile);

    print_section("Table I row 2: Sorting / 2D Mergesort (Theorem V.8)");
    let s = sweep_supervised("mergesort", jobs, &pow4_sizes(3, 7), |m, n| {
        let items = place_z(m, 0, pseudo(n as usize, 2));
        let _ = sort_z(m, 0, items);
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::sorting_bound(Metric::Energy)),
            (Metric::Depth, theory::sorting_bound(Metric::Depth)),
            (Metric::Distance, theory::sorting_bound(Metric::Distance)),
        ],
    );
    print_profiled(&s, profile);

    print_section("Table I row 3: Rank Selection (Theorem VI.3; mean over 5 seeds)");
    // Averaging over seeds smooths the sampling variance; the sweep reaches
    // 4^9 so the linear-energy regime dominates the fit.
    let seeds = 5u64;
    let s = sweep_supervised("selection", jobs, &pow4_sizes(4, 9), |m, n| {
        for seed in 0..seeds {
            let vals = pseudo(n as usize, 3);
            let (_, stats) = select_rank_values(m, 0, vals, n / 2, seed);
            assert_eq!(stats.fallbacks, 0, "fallback at n={n} seed={seed}");
        }
    });
    let s = {
        // Divide the accumulated energy/messages by the seed count (depth
        // and distance watermarks are already per-run maxima).
        let mut avg = spatial_core::report::Sweep::new("selection(avg)");
        for p in &s.points {
            let mut c = p.cost;
            c.energy /= seeds;
            c.messages /= seeds;
            avg.push(p.n, c);
        }
        avg
    };
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::selection_bound(Metric::Energy)),
            (Metric::Depth, theory::selection_bound(Metric::Depth)),
            (Metric::Distance, theory::selection_bound(Metric::Distance)),
        ],
    );
    print_profiled(&s, profile);

    print_section("Table I row 4: SpMV (Theorem VIII.2; uniform random, m = 4n)");
    // Sizes chosen so the padded matrix segment is well filled.
    let s = sweep_supervised("spmv", jobs, &[920, 3900, 15800, 63800], |m, nnz| {
        let n = (nnz / 4) as usize;
        let a = workloads::random_uniform(n, 4, 5);
        let x: Vec<i64> = pseudo(n, 6);
        let out = spmv(m, &a, &x);
        assert_eq!(out.y, a.multiply_dense(&x));
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::spmv_bound(Metric::Energy)),
            (Metric::Depth, theory::spmv_bound(Metric::Depth)),
            (Metric::Distance, theory::spmv_bound(Metric::Distance)),
        ],
    );
    print_profiled(&s, profile);

    println!("\nDone. Record these tables in EXPERIMENTS.md.");
}
