//! **Fig. 2 / Lemma V.3–V.4 vs Theorem V.8** — sorting networks vs the
//! energy-optimal 2D mergesort.
//!
//! The paper's §V.B conclusion: on a `√n × √n` grid, Bitonic Sort costs
//! `Θ(n^{3/2} log n)` energy and `Θ(√n log n)` distance — a `Θ(log n)`
//! factor above the 2D mergesort on both metrics — because its recursion
//! eventually becomes one-dimensional inside single rows. This binary sweeps
//! both algorithms, prints the energy/distance ratios (which must grow
//! logarithmically), and reproduces the Lemma V.3 merge-network costs on
//! rectangles.

use bench::{measure, pow4_sizes, pseudo};
use spatial_core::collectives::zarray::{place_row_major, place_z};
use spatial_core::model::{Coord, SubGrid};
use spatial_core::report::{print_section, Sweep};
use spatial_core::sorting::sort_z;
use spatial_core::sortnet::{bitonic_merge, bitonic_sort, run_row_major};
use spatial_core::theory::{self, Metric};

fn main() {
    println!("Reproduction of the §V sorting-network analysis (Fig. 2 discussion).");

    print_section("(a) Bitonic Sort vs 2D Mergesort on square grids");
    println!(
        "{:>8} {:>15} {:>15} {:>8} {:>9} {:>9} {:>8}",
        "n", "bitonic energy", "merge energy", "E ratio", "bit dist", "mrg dist", "D ratio"
    );
    let mut bit = Sweep::new("bitonic");
    let mut mrg = Sweep::new("mergesort");
    for &n in &pow4_sizes(3, 7) {
        let vals = pseudo(n as usize, 1);
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let net = bitonic_sort(n as usize);
        let cb = measure(|m| {
            let items = place_row_major(m, grid, vals.clone());
            let out = run_row_major(m, &net, grid, items);
            assert!(out.windows(2).all(|w| w[0].value() <= w[1].value()));
        });
        let cm = measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let _ = sort_z(m, 0, items);
        });
        bit.push(n, cb);
        mrg.push(n, cm);
        println!(
            "{:>8} {:>15} {:>15} {:>8.2} {:>9} {:>9} {:>8.2}",
            n,
            cb.energy,
            cm.energy,
            cb.energy as f64 / cm.energy as f64,
            cb.distance,
            cm.distance,
            cb.distance as f64 / cm.distance as f64
        );
    }
    println!("(asymptotics: the E-ratio must grow ≈ Θ(log n) — visible from n = 256 on.");
    println!(" Note the *constants*: the 2D mergesort pays ≈500-700x more per element than");
    println!(" the bitonic network at these sizes, because every merge level runs three");
    println!(" all-pairs rank selections over Θ(√n)-sized windows (the paper's own design,");
    println!(" Lemma V.6). The asymptotic ordering — mergesort energy Θ(n^1.5) vs bitonic");
    println!(" Θ(n^1.5 log n) — shows up as the fitted-exponent gap below; the absolute");
    println!(" crossover lies beyond simulable sizes.)");

    print_section("scaling fits");
    for line in bit.report_lines([
        (Metric::Energy, theory::bitonic_sort_bound(Metric::Energy)),
        (Metric::Depth, theory::bitonic_sort_bound(Metric::Depth)),
        (Metric::Distance, theory::bitonic_sort_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    for line in mrg.report_lines([
        (Metric::Energy, theory::sorting_bound(Metric::Energy)),
        (Metric::Depth, theory::sorting_bound(Metric::Depth)),
        (Metric::Distance, theory::sorting_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    // Under a profile the EDP columns make the depth-vs-energy trade
    // quantitative: bitonic's extra energy shows up directly, mergesort's
    // deeper recursion inflates delay instead.
    let profile = bench::profile_from_args();
    bench::print_profiled(&bit, profile);
    bench::print_profiled(&mrg, profile);

    print_section("(b) Lemma V.3: Bitonic Merge on h×w rectangles, energy Θ(h²w + w²h)");
    println!("{:>8} {:>6} {:>14} {:>14} {:>8}", "h", "w", "energy", "h²w + w²h", "ratio");
    for &(h, w) in &[(16u64, 16u64), (32, 32), (64, 64), (64, 16), (16, 64), (128, 8), (8, 128)] {
        let n = (h * w) as usize;
        let grid = SubGrid::new(Coord::ORIGIN, h, w);
        let net = bitonic_merge(n);
        // Bitonic input: ascending first half, descending second half.
        let mut input = pseudo(n, 3);
        let half = n / 2;
        input[..half].sort_unstable();
        input[half..].sort_unstable_by(|a, b| b.cmp(a));
        let c = measure(|m| {
            let items = place_row_major(m, grid, input.clone());
            let out = run_row_major(m, &net, grid, items);
            assert!(out.windows(2).all(|x| x[0].value() <= x[1].value()));
        });
        let bound = (h * h * w + w * w * h) as f64;
        println!(
            "{:>8} {:>6} {:>14} {:>14.0} {:>8.3}",
            h,
            w,
            c.energy,
            bound,
            c.energy as f64 / bound
        );
    }
    println!("(the ratio column must stay bounded above AND below by constants — Θ, not just O)");
}
