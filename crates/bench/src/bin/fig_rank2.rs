//! **Lemma V.6** — rank selection in two sorted arrays: `O(n^{5/4})`
//! energy, `O(log n)` depth, `O(√n)` distance.

use bench::{print_sweep, sweep};
use spatial_core::collectives::zarray::place_z;
use spatial_core::report::print_section;
use spatial_core::sorting::keyed::Keyed;
use spatial_core::sorting::rank2::rank_split;
use spatial_core::theory::{self, Metric};

#[allow(clippy::type_complexity)]
fn setup(
    m: &mut spatial_core::model::Machine,
    half: usize,
    lo: u64,
) -> (Vec<spatial_core::model::Tracked<Keyed<i64>>>, Vec<spatial_core::model::Tracked<Keyed<i64>>>)
{
    let a: Vec<Keyed<i64>> = (0..half).map(|i| Keyed::new(3 * i as i64, i as u64)).collect();
    let b: Vec<Keyed<i64>> =
        (0..half).map(|i| Keyed::new(3 * i as i64 + 1, (half + i) as u64)).collect();
    let ai = place_z(m, lo, a);
    let bi = place_z(m, lo + half as u64, b);
    (ai, bi)
}

fn main() {
    println!("Reproduction of Lemma V.6 (deterministic rank selection in two sorted arrays).");

    print_section("n-sweep at k = n/2");
    let s = sweep("rank2", &[256, 1024, 4096, 16384, 65536], |m, n| {
        let half = (n / 2) as usize;
        let (ai, bi) = setup(m, half, 0);
        let split = rank_split(m, &ai, 0, &bi, half as u64, n / 2);
        assert_eq!(split.ca + split.cb, n / 2);
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::rank2_bound(Metric::Energy)),
            (Metric::Depth, theory::rank2_bound(Metric::Depth)),
            (Metric::Distance, theory::rank2_bound(Metric::Distance)),
        ],
    );

    print_section("k-sweep at n = 16384 (cost must be stable across ranks)");
    println!("{:>10} {:>14} {:>8} {:>10}", "k", "energy", "depth", "distance");
    let n = 16384u64;
    for k in [1u64, n / 8, n / 4, n / 2, 3 * n / 4, n - 1, n] {
        let c = bench::measure(|m| {
            let (ai, bi) = setup(m, (n / 2) as usize, 0);
            let _ = rank_split(m, &ai, 0, &bi, n / 2, k);
        });
        println!("{:>10} {:>14} {:>8} {:>10}", k, c.energy, c.depth, c.distance);
    }
    println!("(small k skips the sampling phase entirely — the paper's l = 0 case)");
}
