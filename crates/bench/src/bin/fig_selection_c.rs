//! **Ablation** — the §VI sampling constant `c`.
//!
//! Theorem VI.3: "Adjusting the constant c boosts the probability of success
//! to 1 − n^{−d}". Larger `c` ⇒ bigger samples ⇒ fewer pivot failures and
//! fewer iterations, at linearly more sampling energy. The ablation sweeps
//! `c` and reports energy, iterations, and fallback counts over many seeds.

use bench::pseudo;
use spatial_core::collectives::zarray::place_z;
use spatial_core::model::Machine;
use spatial_core::report::print_section;
use spatial_core::selection::{select_rank_cfg, SelectionConfig};

fn main() {
    println!("Selection sampling-constant ablation (Theorem VI.3).");
    let n = 16384usize;
    let seeds = 40u64;
    let vals = pseudo(n, 13);
    let mut sorted = vals.clone();
    sorted.sort_unstable();
    let expect = sorted[n / 2 - 1];

    print_section(&format!("c sweep at n = {n}, median, {seeds} seeds"));
    println!(
        "{:>6} {:>14} {:>12} {:>11} {:>10}",
        "c", "mean energy", "mean iters", "fallbacks", "max iters"
    );
    for &c in &[1.5f64, 2.0, 3.0, 4.0, 6.0, 9.0] {
        let mut tot_energy = 0u64;
        let mut tot_iters = 0usize;
        let mut max_iters = 0usize;
        let mut fallbacks = 0u32;
        for seed in 0..seeds {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let (got, stats) =
                select_rank_cfg(&mut m, 0, items, n as u64 / 2, SelectionConfig { c, seed });
            assert_eq!(got.into_value(), expect, "c={c} seed={seed}");
            tot_energy += m.energy();
            tot_iters += stats.iterations;
            max_iters = max_iters.max(stats.iterations);
            fallbacks += stats.fallbacks;
        }
        println!(
            "{:>6.1} {:>14} {:>12.2} {:>11} {:>10}",
            c,
            tot_energy / seeds,
            tot_iters as f64 / seeds as f64,
            fallbacks,
            max_iters
        );
    }
    println!("\nreadings: small c risks pivot failures (fallback = full sort, expensive);");
    println!("the paper's c ≥ 3 keeps failures rare while the energy stays Θ(n).");
}
