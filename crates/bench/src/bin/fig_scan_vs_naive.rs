//! **Lemma IV.3** — the energy-optimal scan vs the 1D binary-tree scan.
//!
//! §IV.C: a binary-tree prefix sum over the row-major order costs
//! `Ω(n log n)` energy; the Z-order 4-ary up/down-sweep achieves `Θ(n)` at
//! the same `O(log n)` depth. This binary prints both sweeps and the energy
//! ratio, which must grow like `Θ(log n)`.

use bench::{measure, pow4_sizes, pseudo};
use spatial_core::collectives::naive::naive_scan;
use spatial_core::collectives::scan;
use spatial_core::collectives::zarray::{place_row_major, place_z, read_values};
use spatial_core::model::{Coord, SubGrid};
use spatial_core::report::{print_section, Sweep};
use spatial_core::theory::{self, Metric};

fn main() {
    println!("Reproduction of Lemma IV.3: Z-order scan vs row-major binary-tree scan.");

    print_section("energy comparison");
    println!(
        "{:>10} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "n", "z-scan", "naive scan", "ratio", "z depth", "naive dep"
    );
    let mut opt = Sweep::new("scan-zorder");
    let mut naive = Sweep::new("scan-naive");
    for &n in &pow4_sizes(3, 9) {
        let vals = pseudo(n as usize, 1);
        let mut expect = vals.clone();
        for i in 1..expect.len() {
            expect[i] += expect[i - 1];
        }
        let co = measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let out = read_values(scan(m, 0, items, &|a, b| a + b));
            assert_eq!(out, expect);
        });
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let cn = measure(|m| {
            let items = place_row_major(m, grid, vals.clone());
            let out = read_values(naive_scan(m, items, grid, &|a, b| a + b));
            assert_eq!(out, expect);
        });
        opt.push(n, co);
        naive.push(n, cn);
        println!(
            "{:>10} {:>14} {:>14} {:>8.2} {:>10} {:>10}",
            n,
            co.energy,
            cn.energy,
            cn.energy as f64 / co.energy as f64,
            co.depth,
            cn.depth
        );
    }
    println!("(ratio must grow ≈ Θ(log n))");

    print_section("scaling fits");
    for line in opt.report_lines([
        (Metric::Energy, theory::scan_bound(Metric::Energy)),
        (Metric::Depth, theory::scan_bound(Metric::Depth)),
        (Metric::Distance, theory::scan_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    for line in naive.report_lines([
        (Metric::Energy, theory::naive_collective_bound(Metric::Energy)),
        (Metric::Depth, theory::naive_collective_bound(Metric::Depth)),
        (Metric::Distance, theory::naive_collective_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }

    print_section("segmented scan costs the same as plain scan (§IV.C)");
    let n = 4u64.pow(7);
    let plain = measure(|m| {
        let items = place_z(m, 0, pseudo(n as usize, 2));
        let _ = scan(m, 0, items, &|a, b| a + b);
    });
    let segmented = measure(|m| {
        use spatial_core::collectives::{segmented_scan, SegItem};
        let items = place_z(
            m,
            0,
            pseudo(n as usize, 2)
                .into_iter()
                .enumerate()
                .map(|(i, v)| SegItem::new(i % 37 == 0, v))
                .collect(),
        );
        let _ = segmented_scan(m, 0, items, &|a, b| a + b);
    });
    println!("plain:     {plain}");
    println!("segmented: {segmented}");
    assert_eq!(plain.messages, segmented.messages, "identical communication pattern");
}
