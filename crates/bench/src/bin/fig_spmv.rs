//! **§VIII** — SpMV: the direct low-depth algorithm vs the CRCW PRAM
//! simulation upper bound.
//!
//! The paper derives `O(m^{3/2})` energy, `O(log⁴ n)` depth, `O(√m log n)`
//! distance from the PRAM simulation, then improves depth and distance by a
//! `log n` factor with the direct algorithm (Theorem VIII.2). This binary
//! measures both on the same matrices and prints the gap; it also sweeps
//! the workload families (stencil, banded, uniform, power-law).

use bench::measure;
use spatial_core::report::{print_section, Sweep};
use spatial_core::spmv::pram_baseline::spmv_pram_baseline;
use spatial_core::spmv::spmv;
use spatial_core::theory::{self, Metric};

fn main() {
    println!("Reproduction of §VIII: direct SpMV vs PRAM-simulated SpMV.");

    print_section("(a) direct vs PRAM baseline (uniform random, m = 4n)");
    println!(
        "{:>8} {:>8} {:>13} {:>13} {:>9} {:>9} {:>9} {:>9}",
        "n", "m", "direct E", "pram E", "dir dep", "pram dep", "dir dist", "pram dst"
    );
    for &n in &[64usize, 128, 256, 512] {
        let a = workloads::random_uniform(n, 4, 3);
        let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
        let expect = a.multiply_dense(&x);
        let mut dc = Default::default();
        let _ = measure(|m| {
            let out = spmv(m, &a, &x);
            assert_eq!(out.y, expect);
            dc = out.cost;
        });
        let mut pc = Default::default();
        let _ = measure(|m| {
            let (y, cost) = spmv_pram_baseline(m, &a, &x);
            assert_eq!(y, expect);
            pc = cost;
        });
        println!(
            "{:>8} {:>8} {:>13} {:>13} {:>9} {:>9} {:>9} {:>9}",
            n,
            a.nnz(),
            dc.energy,
            pc.energy,
            dc.depth,
            pc.depth,
            dc.distance,
            pc.distance
        );
    }
    println!("(shape claim: the direct algorithm wins on depth and distance at every size,");
    println!(" by a factor that grows with log n; energy is the same order)");

    print_section("(b) workload families at n = 1024 (direct algorithm)");
    println!("{:>12} {:>8} {:>14} {:>8} {:>10}", "family", "m", "energy", "depth", "distance");
    let n = 1024usize;
    let side = 32usize;
    let fams: Vec<(&str, spatial_core::spmv::Coo<i64>)> = vec![
        ("banded(2)", workloads::banded(n, 2, 1)),
        ("uniform(4)", workloads::random_uniform(n, 4, 2)),
        ("zipf(4)", workloads::zipf_rows(n, 4, 3)),
        ("perm", workloads::permutation_matrix(n, 4)),
    ];
    for (name, a) in fams {
        let x: Vec<i64> = (0..n as i64).map(|i| i % 5).collect();
        let expect = a.multiply_dense(&x);
        let mut c = Default::default();
        let _ = measure(|m| {
            let out = spmv(m, &a, &x);
            assert_eq!(out.y, expect);
            c = out.cost;
        });
        println!("{:>12} {:>8} {:>14} {:>8} {:>10}", name, a.nnz(), c.energy, c.depth, c.distance);
    }
    // The float stencil separately (same machinery, f64 values).
    let a = workloads::poisson_2d(side);
    let x: Vec<f64> = (0..side * side).map(|i| (i % 9) as f64).collect();
    let expect = a.multiply_dense(&x);
    let mut c = Default::default();
    let _ = measure(|m| {
        let out = spmv(m, &a, &x);
        assert_eq!(out.y, expect);
        c = out.cost;
    });
    println!("{:>12} {:>8} {:>14} {:>8} {:>10}", "poisson", a.nnz(), c.energy, c.depth, c.distance);

    print_section("(c) density sweep at n = 256: energy O(m^{3/2})");
    let n = 256usize;
    let mut s = Sweep::new("spmv-density");
    println!("{:>8} {:>8} {:>14}", "nnz/row", "m", "energy");
    for &d in &[1usize, 2, 4, 8, 16] {
        let a = workloads::random_uniform(n, d, 7);
        let x: Vec<i64> = vec![1; n];
        let mut c = Default::default();
        let _ = measure(|m| {
            let out = spmv(m, &a, &x);
            assert_eq!(out.y, a.multiply_dense(&x));
            c = out.cost;
        });
        s.push(a.nnz() as u64, c);
        println!("{:>8} {:>8} {:>14}", d, a.nnz(), c.energy);
    }
    for line in s.report_lines([
        (Metric::Energy, theory::spmv_bound(Metric::Energy)),
        (Metric::Depth, theory::spmv_bound(Metric::Depth)),
        (Metric::Distance, theory::spmv_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    bench::print_profiled(&s, bench::profile_from_args());
}
