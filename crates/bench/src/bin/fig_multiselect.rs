//! **Ablation** — multiselection vs. repeated rank selection.
//!
//! The paper frames the merge's three quartile queries as a *multiselection*
//! problem (\[53\]). Sharing one sample, one all-pairs ranking and one bundled
//! pivot broadcast across the three queries removes the redundant `Θ(n)` and
//! `Θ(n^{5/4})` terms; this ablation measures the saving and its effect on
//! the full 2D mergesort (which uses the shared variant).

use bench::{measure, pseudo};
use spatial_core::collectives::zarray::place_z;
use spatial_core::model::Machine;
use spatial_core::report::print_section;
use spatial_core::sorting::keyed::Keyed;
use spatial_core::sorting::rank2::{multi_rank_split, rank_split};

#[allow(clippy::type_complexity)]
fn setup(
    m: &mut Machine,
    half: usize,
) -> (Vec<spatial_core::model::Tracked<Keyed<i64>>>, Vec<spatial_core::model::Tracked<Keyed<i64>>>)
{
    let mut a: Vec<i64> = pseudo(half, 1);
    let mut b: Vec<i64> = pseudo(half, 2);
    a.sort_unstable();
    b.sort_unstable();
    let ka: Vec<Keyed<i64>> =
        a.into_iter().enumerate().map(|(i, v)| Keyed::new(v, i as u64)).collect();
    let kb: Vec<Keyed<i64>> =
        b.into_iter().enumerate().map(|(i, v)| Keyed::new(v, (half + i) as u64)).collect();
    let ai = place_z(m, 0, ka);
    let bi = place_z(m, half as u64, kb);
    (ai, bi)
}

fn main() {
    println!("Multiselection ablation (paper §V-C(c), citation [53]).");

    print_section("three quartile splits: shared sample vs three separate runs");
    println!(
        "{:>10} {:>16} {:>16} {:>8} {:>10} {:>10}",
        "n", "multi energy", "3x single E", "saving", "multi dep", "single dep"
    );
    for &n in &[1024u64, 4096, 16384, 65536] {
        let half = (n / 2) as usize;
        let ks = [n / 4, n / 2, 3 * n / 4];

        let mut mm = Machine::new();
        let (ai, bi) = setup(&mut mm, half);
        let multi = multi_rank_split(&mut mm, &ai, 0, &bi, half as u64, &ks);

        let mut ms = Machine::new();
        let (ai, bi) = setup(&mut ms, half);
        let single: Vec<_> =
            ks.iter().map(|&k| rank_split(&mut ms, &ai, 0, &bi, half as u64, k)).collect();

        assert_eq!(multi, single, "same answers");
        println!(
            "{:>10} {:>16} {:>16} {:>7.1}% {:>10} {:>10}",
            n,
            mm.energy(),
            ms.energy(),
            100.0 * (1.0 - mm.energy() as f64 / ms.energy() as f64),
            mm.report().depth,
            ms.report().depth
        );
    }

    print_section("effect on the full 2D mergesort (which uses the shared variant)");
    for &n in &[1024usize, 4096] {
        let vals = pseudo(n, 5);
        let cost = measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let out = spatial_core::sorting::sort_z(m, 0, items);
            assert!(out.windows(2).all(|w| w[0].value() <= w[1].value()));
        });
        println!("  mergesort n={n}: {cost}");
    }
    println!("\n(the merge spends most energy in the per-quartile windows, which cannot be");
    println!(" shared — the multiselection saving is the shared sample + bundled broadcast)");
}
