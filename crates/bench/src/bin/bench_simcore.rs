//! Throughput benchmark of the simulator core itself.
//!
//! Every other benchmark in this crate measures *model costs* (energy,
//! depth, distance — functions of the algorithm, not of the host). This one
//! measures how fast the simulator *executes*: messages per second of wall
//! clock, the number that decides how large an `n` the figure sweeps can
//! reach. Results land in `BENCH_simcore.json` (committed at the repo root)
//! so the trajectory of the simulator's own performance is versioned next to
//! the code.
//!
//! Modes:
//!
//! * default — the full run: scan at n = 2^14 and 2^16, 2D mergesort at
//!   n = 2^16 and 2^20. Writes `BENCH_simcore.json` in the current
//!   directory.
//! * `--smoke` — CI-sized run (scan 2^14, sort 2^12), writes under
//!   `target/spatial-bench/`, and when a committed `BENCH_simcore.json` is
//!   present compares messages/sec per benchmark id, **failing (exit 1) on a
//!   regression of more than 25%** — against the committed `serial` section
//!   when the run is pinned to `SPATIAL_SIM_THREADS=1`, the `benchmarks`
//!   section otherwise. An id with no reference entry fails the gate too.
//!   A scaling gate then re-runs sort_z/65536 at 1 and 2 threads and fails
//!   if the threaded setting is slower than 95% of serial: mid-sized sorts
//!   sit below the shard engine's amortization threshold, so a thread
//!   setting above one must be free there.
//!
//! Full runs additionally record a `serial` section (every id but the 2^20
//! mergesort, re-measured with one shard) and a `scaling` section (the
//! sort_z/65536 messages/sec at 1, 2, 4 and all available workers).
//!
//! Environment:
//!
//! * `SPATIAL_BENCH_BASELINE=<path>` — a previous run of this harness whose
//!   `benchmarks` section is embedded verbatim as this run's `baseline`
//!   (used once, to record the pre-rework numbers the 2x acceptance gate of
//!   the fast-path PR compares against);
//! * `SPATIAL_BENCH_SAMPLES` / `SPATIAL_BENCH_WARMUP_MS` — as in
//!   [`bench::timing`].

use std::time::Instant;

use bench::pseudo;
use runner::json::Json;
use spatial_core::collectives::{place_z, scan};
use spatial_core::model::{set_sim_threads, sim_threads, Machine};
use spatial_core::sorting::sort_z;

/// One measured benchmark: wall time and message count of a full primitive
/// run, reduced to the headline messages/sec figure.
struct Throughput {
    id: String,
    messages: u64,
    median_ns: u128,
    msgs_per_sec: u64,
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Times `f` (which returns the machine's message count) like
/// [`bench::timing::Group`]: warmup, then median of N samples. Huge runs
/// (hundreds of billions of model messages) pass `huge = true` to run a
/// single un-warmed sample — a 2^20 mergesort is its own warmup.
fn measure(id: &str, huge: bool, mut f: impl FnMut() -> u64) -> Throughput {
    let samples = if huge { 1 } else { env_u64("SPATIAL_BENCH_SAMPLES", 5).max(1) as usize };
    let warmup_ms = if huge { 0 } else { env_u64("SPATIAL_BENCH_WARMUP_MS", 200) };
    let mut messages = 0;
    if !huge {
        let warm_start = Instant::now();
        loop {
            messages = std::hint::black_box(f());
            if warm_start.elapsed().as_millis() >= u128::from(warmup_ms) {
                break;
            }
        }
    }
    let _ = messages;
    let mut ns: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        messages = std::hint::black_box(f());
        ns.push(t.elapsed().as_nanos());
    }
    ns.sort_unstable();
    let median_ns = ns[ns.len() / 2];
    let msgs_per_sec = ((messages as f64) / (median_ns as f64 / 1e9)) as u64;
    println!(
        "{id:<16} {messages:>10} msgs   median {:>12}   {:>12} msgs/s",
        bench::timing::fmt_ns(median_ns),
        msgs_per_sec
    );
    Throughput { id: id.to_string(), messages, median_ns, msgs_per_sec }
}

fn scan_bench(n: usize) -> Throughput {
    let vals = pseudo(n, 1);
    measure(&format!("scan/{n}"), false, || {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        std::hint::black_box(out);
        m.messages()
    })
}

fn sort_bench(n: usize, huge: bool) -> Throughput {
    let vals = pseudo(n, 2);
    measure(&format!("sort_z/{n}"), huge, || {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let out = sort_z(&mut m, 0, items);
        std::hint::black_box(out);
        m.messages()
    })
}

/// One point of the thread-scaling curve: a benchmark re-run with the
/// sharded bare path pinned to a fixed worker count.
struct ScalePoint {
    id: String,
    threads: usize,
    msgs_per_sec: u64,
}

/// Median messages/sec of `samples` fresh sort runs — a lean probe for the
/// scaling gate, which compares two thread settings and cannot afford the
/// full warmup-plus-five-samples protocol on a 2^16 sort.
fn sort_rate(n: usize, samples: usize) -> u64 {
    let vals = pseudo(n, 2);
    let mut rates: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals.clone());
            let t = Instant::now();
            let out = sort_z(&mut m, 0, items);
            let ns = t.elapsed().as_nanos();
            std::hint::black_box(out);
            ((m.messages() as f64) / (ns as f64 / 1e9)) as u64
        })
        .collect();
    rates.sort_unstable();
    rates[rates.len() / 2]
}

/// [`sort_rate`] on a machine carrying the wse-like cost profile, with the
/// profiled report charged once at the end — the workload the profile gate
/// compares against its bare twin.
fn sort_rate_profiled(n: usize, samples: usize) -> u64 {
    use spatial_core::model::WseLike;
    let vals = pseudo(n, 2);
    let mut rates: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let mut m = Machine::with_profile(&WseLike);
            let items = place_z(&mut m, 0, vals.clone());
            let t = Instant::now();
            let out = sort_z(&mut m, 0, items);
            let profiled = m.profiled_report().expect("built-in profiles cannot saturate");
            let ns = t.elapsed().as_nanos();
            std::hint::black_box(out);
            std::hint::black_box(profiled);
            ((m.messages() as f64) / (ns as f64 / 1e9)) as u64
        })
        .collect();
    rates.sort_unstable();
    rates[rates.len() / 2]
}

fn rows(results: &[Throughput]) -> String {
    let mut s = String::new();
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"messages\": {}, \"median_ns\": {}, \"msgs_per_sec\": {}}}{}\n",
            r.id,
            r.messages,
            r.median_ns,
            r.msgs_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s
}

fn render(
    results: &[Throughput],
    serial: &[Throughput],
    scaling: &[ScalePoint],
    baseline: Option<&str>,
) -> String {
    let mut s = String::from("{\n  \"format\": \"spatial-bench/v1\",\n  \"group\": \"simcore\",\n");
    s.push_str("  \"unit\": \"messages_per_second\",\n  \"benchmarks\": [\n");
    s.push_str(&rows(results));
    s.push_str("  ]");
    if !serial.is_empty() {
        s.push_str(",\n  \"serial\": [\n");
        s.push_str(&rows(serial));
        s.push_str("  ]");
    }
    if !scaling.is_empty() {
        s.push_str(",\n  \"scaling\": [\n");
        for (i, p) in scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"threads\": {}, \"msgs_per_sec\": {}}}{}\n",
                p.id,
                p.threads,
                p.msgs_per_sec,
                if i + 1 < scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
    }
    if let Some(b) = baseline {
        s.push_str(",\n  \"baseline\": ");
        s.push_str(b.trim_end());
        s.push('\n');
    } else {
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

/// Extracts the `benchmarks` array of a previous run, re-rendered compactly
/// for embedding as a `baseline` section.
fn baseline_section(doc: &Json) -> Option<String> {
    let benches = doc.get("benchmarks")?.as_array()?;
    let mut s = String::from("[\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"messages\": {}, \"median_ns\": {}, \"msgs_per_sec\": {}}}{}\n",
            b.get("id")?.as_str()?,
            b.get("messages")?.as_u64()?,
            b.get("median_ns")?.as_u64()?,
            b.get("msgs_per_sec")?.as_u64()?,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]");
    Some(s)
}

/// Compares this run against the committed reference section; returns the
/// ids that regressed by more than `max_loss_pct` percent. A benchmark id
/// with no reference entry is itself reported as a failure — a silently
/// skipped gate is how a renamed benchmark loses its regression cover.
fn regressions(
    results: &[Throughput],
    committed: &Json,
    section: &str,
    max_loss_pct: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(benches) = committed.get(section).and_then(Json::as_array) else {
        bad.push(format!("committed reference has no \"{section}\" section"));
        return bad;
    };
    for r in results {
        let reference = benches.iter().find_map(|b| {
            if b.get("id")?.as_str()? == r.id {
                b.get("msgs_per_sec")?.as_f64()
            } else {
                None
            }
        });
        let Some(reference) = reference else {
            bad.push(format!("{}: no entry in the committed \"{section}\" section", r.id));
            continue;
        };
        let floor = reference * (1.0 - max_loss_pct / 100.0);
        if (r.msgs_per_sec as f64) < floor {
            bad.push(format!(
                "{}: {} msgs/s vs committed {} (floor {:.0})",
                r.id, r.msgs_per_sec, reference as u64, floor
            ));
        }
    }
    bad
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--no-huge` drops the single-sample 2^20 mergesort (~10^11 model
    // messages) from the full run — used when recording a baseline on a
    // build too slow to finish it in reasonable time.
    let huge = !std::env::args().any(|a| a == "--no-huge");
    println!("== simulator-core throughput ({}) ==", if smoke { "smoke" } else { "full" });

    // `SPATIAL_BENCH_FILTER=<substring>` runs matching ids only (profiling
    // aid; a filtered run is not a valid BENCH_simcore.json refresh).
    let filter = std::env::var("SPATIAL_BENCH_FILTER").ok();
    let want = |id: &str| filter.as_deref().is_none_or(|f| id.contains(f));
    let mut plan: Vec<(String, bool)> = if smoke {
        vec![("scan/16384".into(), false), ("sort_z/4096".into(), false)]
    } else {
        let mut p = vec![
            ("scan/16384".into(), false),
            ("scan/65536".into(), false),
            ("sort_z/4096".into(), false),
            ("sort_z/65536".into(), true),
        ];
        if huge {
            p.push(("sort_z/1048576".into(), true));
        }
        p
    };
    plan.retain(|(id, _)| want(id));
    let run_plan = |plan: &[(String, bool)]| -> Vec<Throughput> {
        plan.iter()
            .map(|(id, huge)| {
                let n: usize =
                    id.split('/').nth(1).expect("id is kind/n").parse().expect("n parses");
                if id.starts_with("scan/") {
                    scan_bench(n)
                } else {
                    sort_bench(n, *huge)
                }
            })
            .collect()
    };
    let results = run_plan(&plan);

    // Full runs also record the serial (1-shard) numbers for every id but
    // the 2^20 mergesort, so a `SPATIAL_SIM_THREADS=1` smoke run gates
    // against like-for-like figures, plus the per-thread scaling curve of
    // the sharded bare path on sort_z/65536.
    let mut serial: Vec<Throughput> = Vec::new();
    let mut scaling: Vec<ScalePoint> = Vec::new();
    if !smoke {
        let serial_plan: Vec<(String, bool)> =
            plan.iter().filter(|(id, _)| id != "sort_z/1048576").cloned().collect();
        if sim_threads() == 1 {
            // Already serial: the main section is the serial section.
            serial = results
                .iter()
                .filter(|r| r.id != "sort_z/1048576")
                .map(|r| Throughput {
                    id: r.id.clone(),
                    messages: r.messages,
                    median_ns: r.median_ns,
                    msgs_per_sec: r.msgs_per_sec,
                })
                .collect();
        } else {
            println!("-- serial reference (1 shard) --");
            set_sim_threads(1);
            serial = run_plan(&serial_plan);
            set_sim_threads(0);
        }
        let curve_id = "sort_z/65536";
        if want(curve_id) {
            println!("-- thread scaling ({curve_id}) --");
            let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
            let mut counts = vec![1usize, 2, 4, avail];
            counts.sort_unstable();
            counts.dedup();
            for threads in counts {
                set_sim_threads(threads);
                // Median of five fresh runs: single samples on a busy host
                // drift enough to fake a scaling regression.
                let msgs_per_sec = sort_rate(65536, 5);
                println!("{curve_id:<16} threads={threads:<3} {msgs_per_sec:>12} msgs/s");
                scaling.push(ScalePoint { id: curve_id.into(), threads, msgs_per_sec });
            }
            set_sim_threads(0);
        }
    }

    let baseline = std::env::var("SPATIAL_BENCH_BASELINE").ok().and_then(|p| {
        let doc = std::fs::read_to_string(&p).ok()?;
        baseline_section(&Json::parse(&doc).ok()?)
    });
    // A benchmark id absent from the embedded baseline can never be gated —
    // exactly how sort_z/1048576 once shipped without a reference. Refuse to
    // write such a file.
    if let Some(b) = &baseline {
        let missing: Vec<&str> = results
            .iter()
            .map(|r| r.id.as_str())
            .filter(|id| !b.contains(&format!("\"{id}\"")))
            .collect();
        if !missing.is_empty() {
            eprintln!("baseline/benchmark id mismatch: no baseline entry for {missing:?}");
            std::process::exit(1);
        }
    }
    let rendered = render(&results, &serial, &scaling, baseline.as_deref());

    if smoke {
        let dir = std::env::var("SPATIAL_BENCH_JSON")
            .unwrap_or_else(|_| "target/spatial-bench".to_string());
        let path = std::path::Path::new(&dir).join("simcore-smoke.json");
        std::fs::create_dir_all(&dir).ok();
        std::fs::write(&path, &rendered).expect("write smoke results");
        println!("  -> {}", path.display());
        // Gate: compare against the committed reference when present. A
        // serial run (SPATIAL_SIM_THREADS=1) gates against the committed
        // serial numbers, not the default-thread ones.
        match std::fs::read_to_string("BENCH_simcore.json") {
            Err(_) => println!("no committed BENCH_simcore.json; skipping regression gate"),
            Ok(doc) => {
                let committed = Json::parse(&doc).expect("committed BENCH_simcore.json parses");
                assert_eq!(
                    committed.get("format").and_then(Json::as_str),
                    Some("spatial-bench/v1"),
                    "committed BENCH_simcore.json must be spatial-bench/v1"
                );
                let section = if sim_threads() == 1 && committed.get("serial").is_some() {
                    "serial"
                } else {
                    "benchmarks"
                };
                let bad = regressions(&results, &committed, section, 25.0);
                if !bad.is_empty() {
                    eprintln!("messages/sec regression (>25%) vs \"{section}\":");
                    for b in &bad {
                        eprintln!("  {b}");
                    }
                    std::process::exit(1);
                }
                println!("regression gate passed (within 25% of committed \"{section}\")");
            }
        }
        // Scaling gate: a thread setting above 1 must never cost throughput
        // on mid-sized sorts. The shard engine only engages past its
        // amortization threshold (2^17 items), so sort_z/65536 must run at
        // serial speed at any thread count — this pins the regression where
        // sharded 2^16 bitonic stages lost ~20% (955 -> 751 M msgs/s).
        if want("sort_z/65536") {
            println!("-- scaling gate (sort_z/65536, threads 2 vs 1) --");
            set_sim_threads(1);
            let serial = sort_rate(65536, 5);
            set_sim_threads(2);
            let sharded = sort_rate(65536, 5);
            set_sim_threads(0);
            println!("  serial {serial} msgs/s   threads=2 {sharded} msgs/s");
            if (sharded as f64) < 0.95 * serial as f64 {
                eprintln!(
                    "scaling regression: threads=2 ran sort_z/65536 at {sharded} msgs/s, \
                     under 95% of the serial {serial} msgs/s"
                );
                std::process::exit(1);
            }
            println!("scaling gate passed (threads=2 within 5% of serial)");
        }
        // Profile gate: a cost profile is pure accounting applied to the
        // final counters, so a profiled machine must run the hot path at
        // full speed. `is_bare()` deliberately ignores the profile field —
        // this gate fails if anyone ever wires profiles into the per-message
        // path (which would also disable the closed-form batch kernels).
        if want("sort_z/65536") {
            println!("-- profile gate (sort_z/65536, wse-like vs bare) --");
            set_sim_threads(1);
            let bare = sort_rate(65536, 5);
            let profiled = sort_rate_profiled(65536, 5);
            set_sim_threads(0);
            println!("  bare {bare} msgs/s   wse-like {profiled} msgs/s");
            if (profiled as f64) < 0.95 * bare as f64 {
                eprintln!(
                    "profile overhead: wse-like ran sort_z/65536 at {profiled} msgs/s, \
                     under 95% of the bare {bare} msgs/s — profiles must stay off the hot path"
                );
                std::process::exit(1);
            }
            println!("profile gate passed (profiled within 5% of bare)");
        }
    } else {
        std::fs::write("BENCH_simcore.json", &rendered).expect("write BENCH_simcore.json");
        println!("  -> BENCH_simcore.json");
    }
}
