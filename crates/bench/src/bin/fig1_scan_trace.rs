//! **Fig. 1** — the energy-optimal scan's up-sweep and down-sweep.
//!
//! Reconstructs the figure from an actual machine trace on an 8×8 grid:
//! per-PE message-endpoint heatmaps and the per-phase cost split, showing
//! the 4-ary summation tree laid out in Z-order.

use spatial_core::collectives::scan;
use spatial_core::collectives::zarray::{place_z, read_values};
use spatial_core::model::{zorder, Machine};

fn heat(counts: &[u32], side: usize) {
    for r in 0..side {
        let row: Vec<String> = (0..side).map(|c| format!("{:3}", counts[r * side + c])).collect();
        println!("    {}", row.join(" "));
    }
}

fn main() {
    println!("Reproduction of Fig. 1: scan up-sweep + down-sweep on an 8x8 grid.");
    let n = 64usize;
    let side = 8usize;

    let mut m = Machine::new();
    m.enable_trace(1 << 20);
    let items = place_z(&mut m, 0, (1..=n as i64).collect());
    let out = scan(&mut m, 0, items, &|a, b| a + b);
    let sums = read_values(out);
    assert_eq!(*sums.last().unwrap(), (n * (n + 1) / 2) as i64);

    let records = match m.require_trace() {
        Ok(t) => t.records().to_vec(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    };
    // The up-sweep happens first; it sends 4 messages per internal tree node
    // (total (n-1)/3 * 4 = 84 for n = 64). Everything after is down-sweep.
    let up_msgs = (n - 1) / 3 * 4;
    println!("\n  up-sweep messages: {} / total {}", up_msgs, records.len());

    println!("\n  up-sweep endpoints per PE (partial sums climb the 4-ary Z-order tree):");
    let mut counts = vec![0u32; n];
    for rec in &records[..up_msgs] {
        for c in [rec.src, rec.dst] {
            counts[(c.row as usize) * side + c.col as usize] += 1;
        }
    }
    heat(&counts, side);

    println!("\n  down-sweep endpoints per PE (prefixes descend to quadrant corners):");
    let mut counts = vec![0u32; n];
    for rec in &records[up_msgs..] {
        for c in [rec.src, rec.dst] {
            counts[(c.row as usize) * side + c.col as usize] += 1;
        }
    }
    heat(&counts, side);

    println!("\n  tree-node storage cells (height i lives at Z-index i of its subgrid):");
    for height in 1..=3u64 {
        let step = 4u64.pow(height as u32);
        let cells: Vec<String> = (0..n as u64)
            .step_by(step as usize)
            .map(|lo| format!("{}", zorder::coord_of(lo + height)))
            .collect();
        println!("    height {height}: {}", cells.join(" "));
    }

    // Emit the two sweeps as an SVG panel (vector version of Fig. 1).
    let svg = spatial_core::model::svg::render(
        side as u64,
        side as u64,
        &[
            spatial_core::model::svg::Layer {
                records: &records[..up_msgs],
                color: "#1f77b4",
                label: "up-sweep (4-ary Z-order tree)",
            },
            spatial_core::model::svg::Layer {
                records: &records[up_msgs..],
                color: "#d62728",
                label: "down-sweep (prefix distribution)",
            },
        ],
    );
    let path = "experiments/fig1_scan.svg";
    match std::fs::write(path, &svg) {
        Ok(()) => println!("\n  wrote {path}"),
        Err(e) => println!("\n  (could not write {path}: {e})"),
    }

    let report = m.report();
    println!("\n  totals: {report}");
    println!(
        "  checks: energy {} <= 12n = {}; depth {} <= 8·log2(n)+8 = {}",
        report.energy,
        12 * n,
        report.depth,
        8 * 6 + 8
    );
    assert!(report.energy <= (12 * n) as u64);
}
