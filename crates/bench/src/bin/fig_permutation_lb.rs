//! **Lemma V.1 / Corollary V.2 / Lemma VIII.1** — the permutation lower
//! bound and its transfers.
//!
//! (a) Reversal permutations on `h × w` grids: measured routing energy vs
//!     the `max(w,h)²·min(w,h)/9` bound (tight on squares).
//! (b) The square is the cheapest aspect ratio (the paper's argument for
//!     focusing on `w = h`).
//! (c) SpMV on permutation matrices inherits the `Ω(n^{3/2})` bound
//!     (Lemma VIII.1).

use bench::measure;
use spatial_core::model::{Coord, SubGrid};
use spatial_core::report::{print_section, Sweep};
use spatial_core::sorting::permute::{
    permutation_energy_lower_bound, permute_row_major, reversal_perm,
};
use spatial_core::spmv::spmv;
use spatial_core::theory::{self, Metric};

fn main() {
    println!("Reproduction of the permutation lower bound and its consequences.");

    print_section("(a) reversal on squares: energy Θ(n^{3/2})");
    println!("{:>10} {:>14} {:>14} {:>8}", "n", "energy", "lower bound", "ratio");
    let mut s = Sweep::new("reversal");
    for side in [8u64, 16, 32, 64, 128, 256] {
        let n = side * side;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let mut cost = Default::default();
        let _total = measure(|m| {
            cost = permute_row_major(m, grid, &reversal_perm(n));
        });
        s.push(n, cost);
        let lb = permutation_energy_lower_bound(side, side);
        println!(
            "{:>10} {:>14} {:>14} {:>8.2}",
            n,
            cost.energy,
            lb,
            cost.energy as f64 / lb as f64
        );
    }
    for line in s.report_lines([
        (Metric::Energy, theory::sorting_bound(Metric::Energy)),
        (Metric::Depth, theory::shape(0.0, 0)),
        (Metric::Distance, theory::sorting_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }

    print_section("(b) aspect-ratio sweep at fixed n = 4096: squares are cheapest");
    println!("{:>8} {:>8} {:>14} {:>16}", "h", "w", "energy", "max²·min bound");
    for &(h, w) in &[(64u64, 64u64), (128, 32), (256, 16), (512, 8), (1024, 4), (4096, 1)] {
        let grid = SubGrid::new(Coord::ORIGIN, h, w);
        let mut cost = Default::default();
        let _ = measure(|m| {
            cost = permute_row_major(m, grid, &reversal_perm(h * w));
        });
        println!(
            "{:>8} {:>8} {:>14} {:>16}",
            h,
            w,
            cost.energy,
            permutation_energy_lower_bound(h, w)
        );
    }
    println!("(energy grows as the grid elongates — minimized at h = w, as the paper argues)");

    print_section("(c) Lemma VIII.1: SpMV on permutation matrices is Ω(n^{3/2})");
    println!("{:>10} {:>14} {:>16} {:>10}", "n", "spmv energy", "perm bound", "ratio");
    let mut s = Sweep::new("spmv-perm");
    for side in [16u64, 32, 64, 128] {
        let n = (side * side) as usize;
        let a = workloads::permutation_matrix(n, 9);
        let x: Vec<i64> = (0..n as i64).collect();
        let mut cost = Default::default();
        let _ = measure(|m| {
            let out = spmv(m, &a, &x);
            cost = out.cost;
            assert_eq!(out.y, a.multiply_dense(&x));
        });
        s.push(n as u64, cost);
        let lb = permutation_energy_lower_bound(side, side);
        println!(
            "{:>10} {:>14} {:>16} {:>10.1}",
            n,
            cost.energy,
            lb,
            cost.energy as f64 / lb as f64
        );
    }
    for line in s.report_lines([
        (Metric::Energy, theory::spmv_bound(Metric::Energy)),
        (Metric::Depth, theory::spmv_bound(Metric::Depth)),
        (Metric::Distance, theory::spmv_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    println!("(the measured energy must sit above the bound — it does, by the sorting constants)");
}
