//! **Lemma VII.1 / VII.2** — EREW and CRCW PRAM simulation costs.
//!
//! Per simulated step the lemmas charge `O(p(√p + √m))` energy; EREW keeps
//! `O(1)` depth per step while CRCW pays `O(log³ p)` for sorting-based
//! conflict resolution. The sweeps fit energy-per-step against `p^{3/2}`
//! (with `p = m`) and print the per-step depth.

use bench::measure;
use spatial_core::pram::programs::{Broadcast, TreeSum};
use spatial_core::pram::{simulate_crcw, simulate_erew, PramLayout, PramProgram};
use spatial_core::report::{print_section, Sweep};
use spatial_core::theory::{shape, Metric};

fn main() {
    println!("Reproduction of the §VII PRAM simulation bounds.");

    print_section("(a) Lemma VII.1 — EREW tree sum, p = m = n/2");
    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>10} {:>10}",
        "n", "T_p", "energy", "E/step", "depth", "dep/step"
    );
    let mut erew_sweep = Sweep::new("erew-per-step");
    for k in 3..=8u32 {
        let n = 1i64 << (2 * k);
        let prog = TreeSum::new((0..n).collect());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let c = measure(|m| {
            let mem = simulate_erew(m, &prog, layout);
            assert_eq!(mem[0], n * (n - 1) / 2);
        });
        let steps = prog.steps() as u64;
        let mut per_step = c;
        per_step.energy /= steps;
        per_step.messages /= steps;
        per_step.depth = c.depth.div_ceil(steps);
        erew_sweep.push(prog.processors() as u64, per_step);
        println!(
            "{:>8} {:>6} {:>14} {:>14} {:>10} {:>10.1}",
            n,
            steps,
            c.energy,
            per_step.energy,
            c.depth,
            c.depth as f64 / steps as f64
        );
    }
    for line in erew_sweep.report_lines([
        (Metric::Energy, shape(1.5, 0)), // O(p(√p+√m)) = O(p^{3/2}) for p = m
        (Metric::Depth, shape(0.0, 0)),  // O(1) per step
        (Metric::Distance, shape(0.5, 0)),
    ]) {
        println!("{line}");
    }
    println!("(per-step energy fits p^{{3/2}}; per-step depth is a constant — Lemma VII.1)");
    bench::print_profiled(&erew_sweep, bench::profile_from_args());

    print_section("(b) Lemma VII.2 — CRCW concurrent-read broadcast, one step");
    println!("{:>8} {:>14} {:>10} {:>14}", "p", "energy", "depth", "depth/log³p");
    let mut crcw_sweep = Sweep::new("crcw-step");
    for k in 2..=6u32 {
        let p = 4usize.pow(k);
        let prog = Broadcast::new(1, p);
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let c = measure(|m| {
            let mem = simulate_crcw(m, &prog, layout);
            assert!(mem[1..].iter().all(|&v| v == 1));
        });
        crcw_sweep.push(p as u64, c);
        let log = (p as f64).log2();
        println!(
            "{:>8} {:>14} {:>10} {:>14.3}",
            p,
            c.energy,
            c.depth,
            c.depth as f64 / (log * log * log)
        );
    }
    for line in crcw_sweep.report_lines([
        (Metric::Energy, shape(1.5, 0)),
        (Metric::Depth, shape(0.0, 3)), // O(log³ p) per step
        (Metric::Distance, shape(0.5, 0)),
    ]) {
        println!("{line}");
    }
    bench::print_profiled(&crcw_sweep, bench::profile_from_args());

    print_section("(c) EREW vs CRCW on the same program (concurrency resolution overhead)");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "n", "erew E", "crcw E", "ratio", "erew dep", "crcw dep"
    );
    for k in 3..=6u32 {
        let n = 1i64 << (2 * k);
        let prog = TreeSum::new((0..n).collect());
        let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
        let ce = measure(|m| {
            let _ = simulate_erew(m, &prog, layout);
        });
        let cc = measure(|m| {
            let _ = simulate_crcw(m, &prog, layout);
        });
        println!(
            "{:>8} {:>14} {:>14} {:>8.1} {:>10} {:>10}",
            n,
            ce.energy,
            cc.energy,
            cc.energy as f64 / ce.energy as f64,
            ce.depth,
            cc.depth
        );
    }
    println!("(CRCW's generality costs a polylog depth factor and constant-factor energy)");
}
