//! **Fig. 2** — the Bitonic Merge network in 1D and 2D layout.
//!
//! Renders the 16-wire merge network as comparator stages (the 1D view) and
//! as row-major grid exchanges with per-stage Manhattan distances (the 2D
//! view), then measures how the per-stage energy decomposes into the
//! "row phase" (`Θ(h²w)`) and "column phase" (`Θ(w²h)`) of Lemma V.3.

use spatial_core::model::{Coord, Machine, SubGrid};
use spatial_core::sortnet::{bitonic_merge, run_row_major};

fn main() {
    println!("Reproduction of Fig. 2: Bitonic Merge, 1D wires vs 2D grid layout.");
    let n = 16usize;
    let net = bitonic_merge(n);
    let grid = SubGrid::square(Coord::ORIGIN, 4);

    println!("\n1D layout (wire indices; each stage compares i with i^j):");
    for (s, stage) in net.stages().iter().enumerate() {
        let pairs: Vec<String> = stage.iter().map(|c| format!("({},{})", c.low, c.high)).collect();
        println!("  stage {s}: {}", pairs.join(" "));
    }

    println!("\n2D row-major layout (per-stage exchange distances on the 4x4 grid):");
    for (s, stage) in net.stages().iter().enumerate() {
        let mut dists = Vec::new();
        for c in stage {
            let d = grid.rm_coord(c.low as u64).manhattan(grid.rm_coord(c.high as u64));
            dists.push(d);
        }
        let energy: u64 = dists.iter().map(|d| 2 * d).sum();
        println!("  stage {s}: distances {dists:?}  stage energy {energy}");
    }
    println!("  (early stages span rows — 4x4 -> 2x4 -> 1x4; late stages work inside rows — 1x2)");

    println!("\nLemma V.3 phase split on larger square grids:");
    println!("{:>8} {:>14} {:>14} {:>14}", "n", "row-phase E", "col-phase E", "total");
    for side in [8u64, 16, 32, 64] {
        let n = (side * side) as usize;
        let net = bitonic_merge(n);
        let grid = SubGrid::square(Coord::ORIGIN, side);
        // Stage j compares i with i^(n/2^{j+1}); the offset spans rows while
        // it is >= side (the "more than one row" phase of the proof).
        let mut row_e = 0u64;
        let mut col_e = 0u64;
        for (s, stage) in net.stages().iter().enumerate() {
            let offset = n >> (s + 1);
            let e: u64 = stage
                .iter()
                .map(|c| 2 * grid.rm_coord(c.low as u64).manhattan(grid.rm_coord(c.high as u64)))
                .sum();
            if offset >= side as usize {
                row_e += e;
            } else {
                col_e += e;
            }
        }
        // Cross-check the static stage sum against a live run.
        let mut m = Machine::new();
        let items: Vec<_> =
            (0..n).map(|i| m.place(grid.rm_coord(i as u64), (n - i) as i64)).collect();
        let _ = run_row_major(&mut m, &net, grid, items);
        assert_eq!(m.energy(), row_e + col_e, "static geometry must equal measured energy");
        println!("{:>8} {:>14} {:>14} {:>14}", n, row_e, col_e, row_e + col_e);
    }
    println!(
        "(both phases are Θ(n^{{3/2}}) for a single merge — Lemma V.3's h²w + w²h with h = w)"
    );
}
