//! **Lemma IV.1 / Corollary IV.2** — broadcast & reduce collectives.
//!
//! (a) Square-grid sweep: the optimal collectives take `O(n)` energy at
//!     `O(log n)` depth, while the row-major binary-tree baseline pays
//!     `Θ(n log n)` — the `Θ(log n)` separation claimed in §IV.B over \[11\].
//! (b) Tall-grid sweep (`h × w`, fixed `w`): energy follows
//!     `O(hw + h log h)`.

use bench::{measure, pow4_sizes};
use runner::{run_supervised, sweep_supervised, PoolConfig, Task, TaskOutcome};
use spatial_core::collectives::naive::{naive_broadcast, naive_reduce};
use spatial_core::collectives::zarray::place_row_major;
use spatial_core::collectives::{broadcast, reduce};
use spatial_core::model::{Coord, Machine, SubGrid};
use spatial_core::report::print_section;
use spatial_core::theory::{self, Metric};

fn main() {
    let jobs = runner::default_workers();
    println!("Reproduction of Lemma IV.1 / Corollary IV.2 (and the §IV energy improvement).");
    println!("(sweeps run on {jobs} supervised workers; override with SPATIAL_JOBS)");

    print_section("(a) Square broadcast: optimal vs binary-tree baseline");
    println!(
        "{:>10} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "n", "opt energy", "naive energy", "ratio", "opt depth", "naive dep"
    );
    // Both variants of one size form a single supervised task; the sizes
    // fan out across the pool and come back in submission order.
    let sizes = pow4_sizes(3, 9);
    let tasks: Vec<Task<'_, _>> = sizes
        .iter()
        .map(|&n| Task {
            deadline_ms: None,
            run: Box::new(move |_| {
                let side = (n as f64).sqrt() as u64;
                let grid = SubGrid::square(Coord::ORIGIN, side);
                let opt = measure(|m| {
                    let root = m.place(grid.origin, 1i64);
                    let _ = broadcast(m, root, grid);
                });
                let naive = measure(|m| {
                    let root = m.place(grid.origin, 1i64);
                    let _ = naive_broadcast(m, root, grid);
                });
                (opt, naive)
            }),
        })
        .collect();
    let cfg = PoolConfig { workers: jobs, ..Default::default() };
    let mut opt_sweep = spatial_core::report::Sweep::new("broadcast-opt");
    let mut naive_sweep = spatial_core::report::Sweep::new("broadcast-naive");
    for (&n, outcome) in sizes.iter().zip(run_supervised(&cfg, tasks)) {
        let (opt, naive) = match outcome {
            TaskOutcome::Done(pair) => pair,
            other => panic!("broadcast measurement at n = {n} failed: {other:?}"),
        };
        opt_sweep.push(n, opt);
        naive_sweep.push(n, naive);
        println!(
            "{:>10} {:>14} {:>14} {:>8.2} {:>10} {:>10}",
            n,
            opt.energy,
            naive.energy,
            naive.energy as f64 / opt.energy as f64,
            opt.depth,
            naive.depth
        );
    }
    println!("(the ratio column must grow like Θ(log n): ~1 extra doubling per 4x n)");
    bench::print_profiled(&opt_sweep, bench::profile_from_args());
    for line in opt_sweep.report_lines([
        (Metric::Energy, theory::collective_bound(Metric::Energy)),
        (Metric::Depth, theory::collective_bound(Metric::Depth)),
        (Metric::Distance, theory::collective_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }
    for line in naive_sweep.report_lines([
        (Metric::Energy, theory::naive_collective_bound(Metric::Energy)),
        (Metric::Depth, theory::naive_collective_bound(Metric::Depth)),
        (Metric::Distance, theory::naive_collective_bound(Metric::Distance)),
    ]) {
        println!("{line}");
    }

    print_section("(b) Reduce mirrors broadcast (reverse pattern)");
    let s = sweep_supervised("reduce", jobs, &pow4_sizes(3, 9), |m, n| {
        let side = (n as f64).sqrt() as u64;
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let items = place_row_major(m, grid, (0..n as i64).collect());
        let total = reduce(m, items, grid, &|a, b| a + b);
        assert_eq!(total.into_value(), (n * (n - 1) / 2) as i64);
    });
    bench::print_sweep(
        &s,
        [
            (Metric::Energy, theory::collective_bound(Metric::Energy)),
            (Metric::Depth, theory::collective_bound(Metric::Depth)),
            (Metric::Distance, theory::collective_bound(Metric::Distance)),
        ],
    );
    bench::print_profiled(&s, bench::profile_from_args());
    // Baseline comparison at one size for the record.
    let n = 4u64.pow(8);
    let side = (n as f64).sqrt() as u64;
    let grid = SubGrid::square(Coord::ORIGIN, side);
    let naive = measure(|m: &mut Machine| {
        let items = place_row_major(m, grid, (0..n as i64).collect());
        let _ = naive_reduce(m, items, grid, &|a, b| a + b);
    });
    println!("naive reduce at n={n}: energy={} (vs optimal above)", naive.energy);

    print_section("(c) Tall grids: energy O(hw + h log h)");
    println!("{:>8} {:>6} {:>14} {:>16} {:>10}", "h", "w", "energy", "hw + h·log2(h)", "ratio");
    for &(h, w) in
        &[(64u64, 64u64), (256, 64), (1024, 64), (4096, 64), (4096, 16), (4096, 4), (4096, 1)]
    {
        let grid = SubGrid::new(Coord::ORIGIN, h, w);
        let c = measure(|m| {
            let root = m.place(grid.origin, 1i64);
            let _ = broadcast(m, root, grid);
        });
        let bound = (h * w) as f64 + h as f64 * (h as f64).log2();
        println!(
            "{:>8} {:>6} {:>14} {:>16.0} {:>10.2}",
            h,
            w,
            c.energy,
            bound,
            c.energy as f64 / bound
        );
    }
    println!("(the ratio column must stay bounded by a constant)");
}
