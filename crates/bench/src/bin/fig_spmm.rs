//! **Ablation** — sparse matrix × multiple vectors (citation \[13\]).
//!
//! The paper motivates SpMV with "sparse matrix-multiple vectors
//! multiplication" workloads \[13\] (block Krylov methods, GNN feature
//! matrices). `spmv_multi` shares the two 2D mergesorts, the leader
//! elections and the segmented scans across all `d` channels — only the
//! fetched payloads grow with `d`. This ablation sweeps `d` and compares
//! against `d` independent SpMV calls.

use spatial_core::model::Machine;
use spatial_core::report::print_section;
use spatial_core::spmv::{spmv, spmv_multi};

fn main() {
    println!("SpM-multi-V ablation: shared sorts across channels (citation [13]).");

    let n = 512usize;
    let a = workloads::random_uniform(n, 4, 7);
    println!("matrix: {n}x{n}, {} non-zeros", a.nnz());

    print_section("channel sweep");
    println!(
        "{:>4} {:>16} {:>16} {:>8} {:>11} {:>11}",
        "d", "multi energy", "d x single E", "saving", "multi dep", "single dep"
    );
    for &d in &[1usize, 2, 4, 8, 16] {
        let xs: Vec<Vec<i64>> = (0..d)
            .map(|c| (0..n as i64).map(|i| (i * (c as i64 + 3)) % 13 - 6).collect())
            .collect();

        let mut mm = Machine::new();
        let (ys, multi_cost) = spmv_multi(&mut mm, &a, &xs);

        let mut ms = Machine::new();
        for (c, x) in xs.iter().enumerate() {
            let out = spmv(&mut ms, &a, x);
            assert_eq!(out.y, ys[c], "channel {c} must agree");
            assert_eq!(out.y, a.multiply_dense(x), "channel {c} must be correct");
        }

        println!(
            "{:>4} {:>16} {:>16} {:>7.1}% {:>11} {:>11}",
            d,
            multi_cost.energy,
            ms.energy(),
            100.0 * (1.0 - multi_cost.energy as f64 / ms.energy() as f64),
            multi_cost.depth,
            ms.report().depth
        );
    }
    println!("\n(the saving approaches (d-1)/d as d grows: the sorts dominate and are");
    println!(" paid once; message payloads stay O(1) words for constant channel counts)");
}
