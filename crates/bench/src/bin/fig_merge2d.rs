//! **Lemma V.7 / Fig. 3** — the 2D merge: `O((n_A+n_B)^{3/2})` energy,
//! `O(log²)` depth, `O(√n)` distance, for balanced and skewed inputs.

use bench::{measure, print_sweep, sweep};
use spatial_core::collectives::zarray::place_z;
use spatial_core::model::Machine;
use spatial_core::report::print_section;
use spatial_core::sorting::keyed::Keyed;
use spatial_core::sorting::merge2d::merge_adjacent;
use spatial_core::theory::{self, Metric};

fn run_merge(m: &mut Machine, na: usize, nb: usize, lo: u64) {
    let a: Vec<Keyed<i64>> = (0..na).map(|i| Keyed::new(2 * i as i64, i as u64)).collect();
    let b: Vec<Keyed<i64>> =
        (0..nb).map(|i| Keyed::new(2 * i as i64 + 1, (na + i) as u64)).collect();
    let ai = place_z(m, lo, a);
    let bi = place_z(m, lo + na as u64, b);
    let out = merge_adjacent(m, ai, bi, lo);
    assert!(out.windows(2).all(|w| w[0].value() < w[1].value()), "output sorted");
}

fn main() {
    println!("Reproduction of Lemma V.7 (2D merge, Fig. 3 recursion).");

    print_section("balanced merge n-sweep (n_A = n_B = n/2)");
    let s = sweep("merge2d", &[256, 1024, 4096, 16384, 65536], |m, n| {
        run_merge(m, (n / 2) as usize, (n / 2) as usize, 0);
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::merge_bound(Metric::Energy)),
            (Metric::Depth, theory::merge_bound(Metric::Depth)),
            (Metric::Distance, theory::merge_bound(Metric::Distance)),
        ],
    );

    print_section("skew sweep at n = 16384: cost depends on the total, not the split");
    println!("{:>10} {:>10} {:>14} {:>8} {:>10}", "n_A", "n_B", "energy", "depth", "distance");
    let n = 16384usize;
    for &frac in &[2usize, 4, 8, 16, 64] {
        let na = n / frac;
        let nb = n - na;
        let c = measure(|m| run_merge(m, na, nb, 0));
        println!("{:>10} {:>10} {:>14} {:>8} {:>10}", na, nb, c.energy, c.depth, c.distance);
    }
    println!("(the Lemma V.7 recurrence charges (n_A + n_B)^{{3/2}} regardless of balance)");
}
