//! **Lemma VI.1 / VI.2 / Theorem VI.3** — the randomized selection's inner
//! behaviour.
//!
//! * active-count trajectories: `N_{t+1} ≲ N_t^{3/4}·√ln n`, so `O(1)`
//!   iterations suffice (Lemma VI.2);
//! * fallback (pivot-failure) frequency across many seeds (Lemma VI.1 says
//!   it vanishes polynomially);
//! * the energy separation from sorting (Theorem VI.3 vs Theorem V.8).

use bench::{measure, pseudo};
use spatial_core::collectives::zarray::place_z;
use spatial_core::report::print_section;
use spatial_core::selection::select_rank_values;
use spatial_core::sorting::sort_z;

fn main() {
    println!("Reproduction of the §VI selection analysis.");

    print_section("(a) Lemma VI.2: active-count trajectories (n = 4^9, 5 seeds)");
    let n = 4usize.pow(9);
    let ln_n = (n as f64).ln();
    for seed in 0..5u64 {
        let vals = pseudo(n, 7);
        let mut traj = Vec::new();
        let mut iters = 0;
        let _ = measure(|m| {
            let (_, stats) = select_rank_values(m, 0, vals.clone(), n as u64 / 2, seed);
            traj = stats.active_trajectory.clone();
            iters = stats.iterations;
        });
        let bounds: Vec<String> = traj
            .windows(2)
            .map(|w| {
                format!(
                    "{} -> {} (bound {:.0})",
                    w[0],
                    w[1],
                    (w[0] as f64).powf(0.75) * ln_n.sqrt() * 2.0
                )
            })
            .collect();
        println!("  seed {seed}: {iters} iterations");
        for b in bounds {
            println!("    N_t {b}");
        }
    }

    print_section("(b) Lemma VI.1: fallback frequency over 100 seeds (n = 4096)");
    let n = 4096usize;
    let mut fallbacks = 0u32;
    let mut iter_histogram = std::collections::BTreeMap::new();
    for seed in 0..100u64 {
        let vals = pseudo(n, 13);
        let mut m = spatial_core::model::Machine::new();
        let (got, stats) = select_rank_values(&mut m, 0, vals.clone(), n as u64 / 2, seed);
        let mut sorted = vals;
        sorted.sort_unstable();
        assert_eq!(got, sorted[n / 2 - 1], "wrong median at seed {seed}");
        fallbacks += stats.fallbacks;
        *iter_histogram.entry(stats.iterations).or_insert(0u32) += 1;
    }
    println!("  fallbacks: {fallbacks}/100 runs (paper: probability O(n^(-c/6)))");
    println!("  iteration histogram: {iter_histogram:?}");

    print_section("(c) Theorem VI.3 vs Theorem V.8: selection vs sorting energy");
    println!("{:>10} {:>16} {:>16} {:>8}", "n", "selection E", "sorting E", "ratio");
    for k in 4..=8u32 {
        let n = 4usize.pow(k);
        let vals = pseudo(n, 17);
        let cs = measure(|m| {
            let (_, _) = select_rank_values(m, 0, vals.clone(), n as u64 / 2, 3);
        });
        let co = measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let _ = sort_z(m, 0, items);
        });
        println!(
            "{:>10} {:>16} {:>16} {:>8.1}",
            n,
            cs.energy,
            co.energy,
            co.energy as f64 / cs.energy as f64
        );
    }
    println!("(the ratio column must grow polynomially, ≈ ·2 per 4x n — the Θ(√n) separation)");
}
