//! **Lemma V.5** — All-Pairs Sort: `O(n^{5/2})` energy, `O(log n)` depth,
//! `O(n)` distance.
//!
//! The deliberately energy-hungry, depth-optimal subroutine used on samples
//! and windows inside the rank routines. The sweep fits all three metrics.

use bench::{print_profiled, print_sweep, profile_from_args, pseudo, sweep};
use spatial_core::collectives::zarray::place_z;
use spatial_core::report::print_section;
use spatial_core::sorting::allpairs::{allpairs_sort_to_z, scratch_for};
use spatial_core::sorting::keyed::attach_uids;
use spatial_core::theory::{self, Metric};

fn main() {
    println!("Reproduction of Lemma V.5 (All-Pairs Sort).");

    // Powers of four avoid the padding stairstep (the scratch square pads n
    // to the next power of four, which would distort a doubling sweep).
    print_section("n-sweep (powers of four: padding-free)");
    let s = sweep("all-pairs", &[16, 64, 256, 1024], |m, n| {
        let vals = pseudo(n as usize, 1);
        let mut expect = vals.clone();
        expect.sort();
        let items = attach_uids(place_z(m, 0, vals));
        let bm = spatial_core::model::zorder::next_power_of_four(n);
        let sorted = allpairs_sort_to_z(m, items, scratch_for(0, bm * bm), 0);
        let got: Vec<i64> = sorted.iter().map(|t| t.value().key).collect();
        assert_eq!(got, expect);
    });
    print_sweep(
        &s,
        [
            (Metric::Energy, theory::allpairs_bound(Metric::Energy)),
            (Metric::Depth, theory::allpairs_bound(Metric::Depth)),
            (Metric::Distance, theory::allpairs_bound(Metric::Distance)),
        ],
    );
    print_profiled(&s, profile_from_args());

    print_section("comparison: where all-pairs loses to mergesort (energy) but wins on depth");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>10}",
        "n", "allpairs E", "mergesort E", "ap depth", "ms depth"
    );
    for &n in &[16u64, 64, 256] {
        let vals = pseudo(n as usize, 2);
        let ap = bench::measure(|m| {
            let items = attach_uids(place_z(m, 0, vals.clone()));
            let bm = spatial_core::model::zorder::next_power_of_four(n);
            let _ = allpairs_sort_to_z(m, items, scratch_for(0, bm * bm), 0);
        });
        let ms = bench::measure(|m| {
            let items = place_z(m, 0, vals.clone());
            let _ = spatial_core::sorting::sort_z(m, 0, items);
        });
        println!("{:>8} {:>16} {:>16} {:>10} {:>10}", n, ap.energy, ms.energy, ap.depth, ms.depth);
    }
    println!("(all-pairs keeps O(log n) depth; the paper uses it only on O(√n)-sized inputs)");
}
